#include "core/ranking.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::core {

std::vector<PageRank> build_ranking(const EpochObservation& obs,
                                    FusionMode mode, double trace_weight) {
  std::unordered_map<PageKey, PageRank, PageKeyHash> merged;
  merged.reserve(obs.abit.size() + obs.trace.size());
  if (mode != FusionMode::TraceOnly) {
    for (const auto& [key, count] : obs.abit) {
      PageRank& pr = merged[key];
      pr.key = key;
      pr.abit = count;
    }
  }
  if (mode != FusionMode::AbitOnly) {
    for (const auto& [key, count] : obs.trace) {
      PageRank& pr = merged[key];
      pr.key = key;
      pr.trace = count;
    }
  }
  // Write evidence rides along without contributing to the fused rank;
  // write-aware policies read it from the PageRank entries.
  for (const auto& [key, count] : obs.writes) {
    const auto it = merged.find(key);
    if (it != merged.end()) it->second.writes = count;
  }
  std::vector<PageRank> ranked;
  ranked.reserve(merged.size());
  for (auto& [key, pr] : merged) {
    switch (mode) {
      case FusionMode::Sum:
      case FusionMode::AbitOnly:
      case FusionMode::TraceOnly:
        pr.rank = static_cast<std::uint64_t>(pr.abit) + pr.trace;
        break;
      case FusionMode::Max:
        pr.rank = std::max<std::uint64_t>(pr.abit, pr.trace);
        break;
      case FusionMode::Weighted:
        TMPROF_EXPECTS(trace_weight >= 0.0);
        pr.rank = pr.abit + static_cast<std::uint64_t>(
                                static_cast<double>(pr.trace) * trace_weight);
        break;
    }
    ranked.push_back(pr);
  }
  // Descending rank; ties broken by key for determinism.
  std::sort(ranked.begin(), ranked.end(),
            [](const PageRank& a, const PageRank& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.key < b.key;
            });
  return ranked;
}

void save_page_counts(
    util::ckpt::Writer& w,
    const std::unordered_map<PageKey, std::uint32_t, PageKeyHash>& counts) {
  std::vector<PageKey> keys;
  keys.reserve(counts.size());
  for (const auto& [key, count] : counts) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  w.put_u64(keys.size());
  for (const PageKey& key : keys) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
    w.put_u32(counts.at(key));
  }
}

void load_page_counts(
    util::ckpt::Reader& r,
    std::unordered_map<PageKey, std::uint32_t, PageKeyHash>& counts) {
  counts.clear();
  const std::uint64_t n = r.get_u64();
  counts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    const std::uint32_t count = r.get_u32();
    counts.emplace(key, count);
  }
}

void save_observation(util::ckpt::Writer& w, const EpochObservation& obs) {
  w.put_u32(obs.epoch);
  save_page_counts(w, obs.abit);
  save_page_counts(w, obs.trace);
  save_page_counts(w, obs.writes);
}

void load_observation(util::ckpt::Reader& r, EpochObservation& obs) {
  obs.epoch = r.get_u32();
  load_page_counts(r, obs.abit);
  load_page_counts(r, obs.trace);
  load_page_counts(r, obs.writes);
}

void save_ranking(util::ckpt::Writer& w, const std::vector<PageRank>& ranking) {
  w.put_u64(ranking.size());
  for (const PageRank& pr : ranking) {
    w.put_u64(pr.key.pid);
    w.put_u64(pr.key.page_va);
    w.put_u64(pr.rank);
    w.put_u32(pr.abit);
    w.put_u32(pr.trace);
    w.put_u32(pr.writes);
  }
}

void load_ranking(util::ckpt::Reader& r, std::vector<PageRank>& ranking) {
  ranking.clear();
  const std::uint64_t n = r.get_u64();
  ranking.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PageRank pr;
    pr.key.pid = static_cast<mem::Pid>(r.get_u64());
    pr.key.page_va = r.get_u64();
    pr.rank = r.get_u64();
    pr.abit = r.get_u32();
    pr.trace = r.get_u32();
    pr.writes = r.get_u32();
    ranking.push_back(pr);
  }
}

}  // namespace tmprof::core
