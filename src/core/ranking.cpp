#include "core/ranking.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tmprof::core {

std::vector<PageRank> build_ranking(const EpochObservation& obs,
                                    FusionMode mode, double trace_weight) {
  std::unordered_map<PageKey, PageRank, PageKeyHash> merged;
  merged.reserve(obs.abit.size() + obs.trace.size());
  if (mode != FusionMode::TraceOnly) {
    for (const auto& [key, count] : obs.abit) {
      PageRank& pr = merged[key];
      pr.key = key;
      pr.abit = count;
    }
  }
  if (mode != FusionMode::AbitOnly) {
    for (const auto& [key, count] : obs.trace) {
      PageRank& pr = merged[key];
      pr.key = key;
      pr.trace = count;
    }
  }
  // Write evidence rides along without contributing to the fused rank;
  // write-aware policies read it from the PageRank entries.
  for (const auto& [key, count] : obs.writes) {
    const auto it = merged.find(key);
    if (it != merged.end()) it->second.writes = count;
  }
  std::vector<PageRank> ranked;
  ranked.reserve(merged.size());
  for (auto& [key, pr] : merged) {
    switch (mode) {
      case FusionMode::Sum:
      case FusionMode::AbitOnly:
      case FusionMode::TraceOnly:
        pr.rank = static_cast<std::uint64_t>(pr.abit) + pr.trace;
        break;
      case FusionMode::Max:
        pr.rank = std::max<std::uint64_t>(pr.abit, pr.trace);
        break;
      case FusionMode::Weighted:
        TMPROF_EXPECTS(trace_weight >= 0.0);
        pr.rank = pr.abit + static_cast<std::uint64_t>(
                                static_cast<double>(pr.trace) * trace_weight);
        break;
    }
    ranked.push_back(pr);
  }
  // Descending rank; ties broken by key for determinism.
  std::sort(ranked.begin(), ranked.end(),
            [](const PageRank& a, const PageRank& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.key < b.key;
            });
  return ranked;
}

}  // namespace tmprof::core
