#include "core/ranking.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::core {
namespace {

/// Merge the per-source counters for `mode` into unsorted fused entries in
/// `out`. Entries are appended as keys first appear; `scratch.index` maps a
/// page to its position in `out` so the second source and the writes
/// ride-along patch in place. The final fuse pass is then a sequential
/// sweep of `out` rather than a strided walk of a wide hash table. Output
/// order here is slot order, but every caller sorts (fully or top-K) under
/// the total RankOrder, which erases it.
void merge_observation(const EpochObservation& obs, const FusionParams& params,
                       RankingScratch& scratch, std::vector<PageRank>& out) {
  const FusionMode mode = params.mode;
  PageMap<std::uint32_t>& index = scratch.index;
  index.clear();
  // Size for the largest source, not the sum: the sources overlap heavily
  // (same hot pages), and summing would double the table — and the probe
  // miss rate — for nothing. If an epoch's overlap is low the table grows
  // once and keeps that capacity for every later epoch.
  index.reserve(
      std::max({obs.abit.size(), obs.trace.size(), obs.devmon.size()}));
  out.clear();
  out.reserve(obs.abit.size() + obs.trace.size() + obs.devmon.size());
  if (mode != FusionMode::TraceOnly && mode != FusionMode::DevOnly) {
    for (const auto& [key, count] : obs.abit) {
      // Keys are unique within one source: always a fresh entry.
      index.try_emplace(key, static_cast<std::uint32_t>(out.size()));
      PageRank pr;
      pr.key = key;
      pr.abit = count;
      out.push_back(pr);
    }
  }
  if (mode != FusionMode::AbitOnly && mode != FusionMode::DevOnly) {
    for (const auto& [key, count] : obs.trace) {
      const auto [pos, inserted] =
          index.try_emplace(key, static_cast<std::uint32_t>(out.size()));
      if (inserted) {
        PageRank pr;
        pr.key = key;
        pr.trace = count;
        out.push_back(pr);
      } else {
        out[*pos].trace = count;
      }
    }
  }
  // Device-counter evidence: in the devmon fusion modes a frame the device
  // saw but sampling missed still earns an entry (that coverage is DevMon's
  // whole point); in every other mode it rides along like writes.
  const bool devmon_ranks =
      mode == FusionMode::SumDev || mode == FusionMode::DevOnly;
  for (const auto& [key, count] : obs.devmon) {
    if (devmon_ranks) {
      const auto [pos, inserted] =
          index.try_emplace(key, static_cast<std::uint32_t>(out.size()));
      if (inserted) {
        PageRank pr;
        pr.key = key;
        pr.devmon = count;
        out.push_back(pr);
      } else {
        out[*pos].devmon = count;
      }
    } else {
      const auto it = index.find(key);
      if (it != index.end()) out[it->second].devmon = count;
    }
  }
  // Write evidence rides along without contributing to the fused rank;
  // write-aware policies read it from the PageRank entries.
  for (const auto& [key, count] : obs.writes) {
    const auto it = index.find(key);
    if (it != index.end()) out[it->second].writes = count;
  }
  for (PageRank& pr : out) {
    switch (mode) {
      case FusionMode::Sum:
      case FusionMode::AbitOnly:
      case FusionMode::TraceOnly:
        pr.rank = static_cast<std::uint64_t>(pr.abit) + pr.trace;
        break;
      case FusionMode::Max:
        pr.rank = std::max<std::uint64_t>(pr.abit, pr.trace);
        break;
      case FusionMode::Weighted:
        TMPROF_EXPECTS(params.trace_weight >= 0.0);
        pr.rank = pr.abit + static_cast<std::uint64_t>(
                                static_cast<double>(pr.trace) *
                                params.trace_weight);
        break;
      case FusionMode::SumDev:
        TMPROF_EXPECTS(params.devmon_weight >= 0.0);
        pr.rank = static_cast<std::uint64_t>(pr.abit) + pr.trace +
                  static_cast<std::uint64_t>(static_cast<double>(pr.devmon) *
                                             params.devmon_weight);
        break;
      case FusionMode::DevOnly:
        pr.rank = pr.devmon;
        break;
    }
  }
}

}  // namespace

void build_ranking_into(const EpochObservation& obs,
                        const FusionParams& params, RankingScratch& scratch,
                        std::vector<PageRank>& out) {
  merge_observation(obs, params, scratch, out);
  // Descending rank; ties broken by key for determinism.
  std::sort(out.begin(), out.end(), RankOrder{});
}

void build_ranking_into(const EpochObservation& obs, FusionMode mode,
                        double trace_weight, RankingScratch& scratch,
                        std::vector<PageRank>& out) {
  build_ranking_into(obs, FusionParams{mode, trace_weight, 1.0}, scratch, out);
}

std::vector<PageRank> build_ranking(const EpochObservation& obs,
                                    FusionMode mode, double trace_weight) {
  RankingScratch scratch;
  std::vector<PageRank> ranked;
  build_ranking_into(obs, mode, trace_weight, scratch, ranked);
  return ranked;
}

void build_ranking_topk_into(const EpochObservation& obs,
                             const FusionParams& params, std::size_t k,
                             RankingScratch& scratch,
                             std::vector<PageRank>& out) {
  merge_observation(obs, params, scratch, out);
  if (k >= out.size()) {
    std::sort(out.begin(), out.end(), RankOrder{});
    return;
  }
  // RankOrder is a strict total order over distinct pages, so the k
  // smallest-under-the-order elements are a unique set: partitioning with
  // nth_element and then sorting the prefix reproduces the full sort's
  // first k entries bit for bit.
  std::nth_element(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(k),
                   out.end(), RankOrder{});
  out.resize(k);
  std::sort(out.begin(), out.end(), RankOrder{});
}

void build_ranking_topk_into(const EpochObservation& obs, FusionMode mode,
                             double trace_weight, std::size_t k,
                             RankingScratch& scratch,
                             std::vector<PageRank>& out) {
  build_ranking_topk_into(obs, FusionParams{mode, trace_weight, 1.0}, k,
                          scratch, out);
}

std::vector<PageRank> build_ranking_topk(const EpochObservation& obs,
                                         FusionMode mode, double trace_weight,
                                         std::size_t k) {
  RankingScratch scratch;
  std::vector<PageRank> ranked;
  build_ranking_topk_into(obs, mode, trace_weight, k, scratch, ranked);
  return ranked;
}

void save_page_counts(util::ckpt::Writer& w, const PageCountMap& counts) {
  w.put_u64(counts.size());
  // Single ascending-key pass; no per-key re-hash.
  counts.fold_sorted([&w](const PageKey& key, std::uint32_t count) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
    w.put_u32(count);
  });
}

void load_page_counts(util::ckpt::Reader& r, PageCountMap& counts) {
  counts.clear();
  const std::uint64_t n = r.get_u64();
  counts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    counts[key] = r.get_u32();
  }
}

void save_observation(util::ckpt::Writer& w, const EpochObservation& obs) {
  w.put_u32(obs.epoch);
  save_page_counts(w, obs.abit);
  save_page_counts(w, obs.trace);
  save_page_counts(w, obs.writes);
  save_page_counts(w, obs.devmon);
}

void load_observation(util::ckpt::Reader& r, EpochObservation& obs) {
  obs.epoch = r.get_u32();
  load_page_counts(r, obs.abit);
  load_page_counts(r, obs.trace);
  load_page_counts(r, obs.writes);
  load_page_counts(r, obs.devmon);
}

void save_ranking(util::ckpt::Writer& w, const std::vector<PageRank>& ranking) {
  w.put_u64(ranking.size());
  for (const PageRank& pr : ranking) {
    w.put_u64(pr.key.pid);
    w.put_u64(pr.key.page_va);
    w.put_u64(pr.rank);
    w.put_u32(pr.abit);
    w.put_u32(pr.trace);
    w.put_u32(pr.writes);
    w.put_u32(pr.devmon);
  }
}

void load_ranking(util::ckpt::Reader& r, std::vector<PageRank>& ranking) {
  ranking.clear();
  const std::uint64_t n = r.get_u64();
  ranking.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PageRank pr;
    pr.key.pid = static_cast<mem::Pid>(r.get_u64());
    pr.key.page_va = r.get_u64();
    pr.rank = r.get_u64();
    pr.abit = r.get_u32();
    pr.trace = r.get_u32();
    pr.writes = r.get_u32();
    pr.devmon = r.get_u32();
    ranking.push_back(pr);
  }
}

}  // namespace tmprof::core
