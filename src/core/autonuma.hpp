#pragma once
/// \file autonuma.hpp
/// AutoNUMA-style hint-fault profiler (Section II-A). Linux's NUMA
/// balancing periodically marks page portions (e.g., 256 MB) inaccessible;
/// the next touch raises a hint fault that identifies the accessing task
/// and page, after which access is restored. The paper cites this as the
/// mainline-kernel way to gain access visibility — and as a cautionary
/// tale, because each observation costs a full page fault plus the
/// periodic PTE rewriting.
///
/// Implemented on the BadgerTrap poisoning substrate with
/// unpoison-on-fault semantics. Serves as a comparison profiler: its
/// observations plug into the same ranking/policy pipeline as TMP's.

#include <cstdint>
#include <unordered_map>

#include "core/ranking.hpp"
#include "monitors/badgertrap.hpp"
#include "sim/system.hpp"

namespace tmprof::core {

struct AutoNumaConfig {
  /// Pages protected per process per pass (a "page portion"; Linux uses
  /// 256 MB ≈ 65536 pages — scale with footprints).
  std::uint64_t window_pages = 4096;
  /// Cost of rewriting one PTE to no-access during the protect pass
  /// (includes its share of the batched flush).
  util::SimNs protect_cost_per_page_ns = 30;
  /// Hint-fault handler cost (full fault + task accounting; this is the
  /// overhead the paper contrasts with TMP's monitors).
  util::SimNs fault_cost_ns = 2 * util::kMicrosecond;
};

/// Periodic profiler: each pass protects the next window of each tracked
/// process's pages; hint faults during the following interval are the
/// access samples.
class AutoNumaProfiler {
 public:
  AutoNumaProfiler(sim::System& system, const AutoNumaConfig& config);
  AutoNumaProfiler(const AutoNumaProfiler&) = delete;
  AutoNumaProfiler& operator=(const AutoNumaProfiler&) = delete;
  ~AutoNumaProfiler();

  /// Run one protect pass: advance each process's window and mark it
  /// inaccessible. Returns the modeled cost (also charged to the clock).
  util::SimNs protect_pass();

  /// Hand out the samples observed since the previous call (hint-fault
  /// counts per page), clearing them.
  [[nodiscard]] EpochObservation end_epoch();

  /// Total modeled profiling cost so far: protect passes + fault handling
  /// beyond the fault latency already charged inline by the trap.
  [[nodiscard]] util::SimNs overhead_ns() const noexcept {
    return overhead_ns_;
  }
  [[nodiscard]] std::uint64_t faults_taken() const noexcept {
    return faults_taken_;
  }

 private:
  sim::System& system_;
  AutoNumaConfig config_;
  monitors::BadgerTrap trap_;
  /// Per-process cursor into its page list (windows slide round-robin).
  std::unordered_map<mem::Pid, std::uint64_t> cursor_;
  /// Fault counts at the previous end_epoch, to compute deltas.
  std::unordered_map<PageKey, std::uint64_t, PageKeyHash> last_faults_;
  std::uint32_t epoch_ = 0;
  util::SimNs overhead_ns_ = 0;
  std::uint64_t faults_taken_ = 0;
};

}  // namespace tmprof::core
