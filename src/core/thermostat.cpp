#include "core/thermostat.hpp"

#include "util/assert.hpp"

namespace tmprof::core {

ThermostatClassifier::ThermostatClassifier(sim::System& system,
                                           const ThermostatConfig& config,
                                           std::uint64_t seed)
    : system_(system), config_(config),
      trap_([&config] {
        monitors::BadgerTrapConfig trap_config;
        trap_config.fault_latency_ns = config.fault_cost_ns;
        trap_config.hot_extra_latency_ns = 0;
        trap_config.handler_cost_ns = 0;
        return trap_config;
      }()),
      rng_(seed) {
  TMPROF_EXPECTS(config.sample_fraction > 0.0 &&
                 config.sample_fraction <= 1.0);
  system_.set_badgertrap(&trap_);
}

ThermostatClassifier::~ThermostatClassifier() {
  // Disarm any open interval's sample before detaching the fault handler.
  for (const PageKey& key : sampled_) {
    if (trap_.is_poisoned(key.pid, key.page_va)) {
      sim::Process& proc = system_.process(key.pid);
      trap_.unpoison(key.pid, proc.page_table(), key.page_va);
    }
  }
  system_.set_badgertrap(nullptr);
}

std::uint64_t ThermostatClassifier::begin_interval() {
  TMPROF_EXPECTS(sampled_.empty());  // close the previous interval first
  for (sim::Process* proc : system_.processes()) {
    const mem::Pid pid = proc->pid();
    const std::uint32_t core = pid % system_.config().cores;
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize, mem::Pte&) {
          if (!rng_.chance(config_.sample_fraction)) return;
          trap_.poison(pid, proc->page_table(), system_.tlb(core), page_va);
          sampled_.push_back(PageKey{pid, page_va});
        });
  }
  return sampled_.size();
}

void ThermostatClassifier::refresh() {
  for (const PageKey& key : sampled_) {
    sim::Process& proc = system_.process(key.pid);
    const std::uint32_t core = key.pid % system_.config().cores;
    // Re-poisoning re-arms the page and flushes its cached translation;
    // fault counts accumulate across refreshes within the interval.
    trap_.poison(key.pid, proc.page_table(), system_.tlb(core), key.page_va);
  }
}

EpochObservation ThermostatClassifier::end_interval() {
  EpochObservation obs;
  obs.epoch = epoch_++;
  hot_pages_.clear();
  for (const PageKey& key : sampled_) {
    const auto count = static_cast<std::uint32_t>(
        trap_.fault_count(key.pid, key.page_va));
    if (count > 0) {
      // Fault-count evidence is translation-path data, like A-bit samples.
      obs.abit[key] = count;
    }
    if (count >= config_.hot_threshold_faults) {
      hot_pages_.push_back(key);
    }
    sim::Process& proc = system_.process(key.pid);
    if (trap_.is_poisoned(key.pid, key.page_va)) {
      trap_.unpoison(key.pid, proc.page_table(), key.page_va);
    }
  }
  sampled_.clear();
  return obs;
}

}  // namespace tmprof::core
