#include "core/pid_filter.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::core {

PidFilter::PidFilter(const PidFilterConfig& config) : config_(config) {
  TMPROF_EXPECTS(config.cpu_threshold >= 0.0 && config.cpu_threshold <= 1.0);
  TMPROF_EXPECTS(config.mem_threshold >= 0.0 && config.mem_threshold <= 1.0);
}

std::vector<mem::Pid> PidFilter::select(
    const std::vector<sim::Process*>& processes) {
  // Deltas of issued ops since last evaluation approximate CPU time.
  std::uint64_t total_delta = 0;
  std::uint64_t total_rss = 0;
  std::vector<std::uint64_t> deltas(processes.size(), 0);
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const sim::Process* p = processes[i];
    std::uint64_t last = 0;
    for (const auto& [pid, ops] : last_ops_) {
      if (pid == p->pid()) last = ops;
    }
    deltas[i] = p->ops_issued() - last;
    total_delta += deltas[i];
    total_rss += p->rss_pages();
  }

  struct Candidate {
    mem::Pid pid;
    double combined;
    bool pinned;
  };
  std::vector<Candidate> kept;
  std::size_t n_pinned = 0;
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const sim::Process* p = processes[i];
    const double cpu = total_delta == 0
                           ? 0.0
                           : static_cast<double>(deltas[i]) /
                                 static_cast<double>(total_delta);
    const double mem = total_rss == 0
                           ? 0.0
                           : static_cast<double>(p->rss_pages()) /
                                 static_cast<double>(total_rss);
    const bool pinned = is_pinned(p->pid());
    if (pinned || cpu >= config_.cpu_threshold ||
        mem >= config_.mem_threshold) {
      kept.push_back(Candidate{p->pid(), cpu + mem, pinned});
      if (pinned) ++n_pinned;
    }
  }
  if (config_.restrict_top_n > 0 && kept.size() > config_.restrict_top_n) {
    if (pinned_.empty()) {
      std::sort(kept.begin(), kept.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.combined > b.combined;
                });
      kept.resize(config_.restrict_top_n);
    } else {
      // Pinned pids survive the trim; the remaining slots go to the
      // highest combined share. Total order (pid tiebreak) so the trimmed
      // set is deterministic under share ties.
      std::sort(kept.begin(), kept.end(),
                [](const Candidate& a, const Candidate& b) {
                  if (a.pinned != b.pinned) return a.pinned;
                  if (a.combined != b.combined) return a.combined > b.combined;
                  return a.pid < b.pid;
                });
      kept.resize(std::max<std::size_t>(config_.restrict_top_n, n_pinned));
    }
  }

  last_ops_.clear();
  for (const sim::Process* p : processes) {
    last_ops_.emplace_back(p->pid(), p->ops_issued());
  }

  std::vector<mem::Pid> pids;
  pids.reserve(kept.size());
  for (const Candidate& c : kept) pids.push_back(c.pid);
  std::sort(pids.begin(), pids.end());
  return pids;
}

bool PidFilter::is_pinned(mem::Pid pid) const noexcept {
  return std::find(pinned_.begin(), pinned_.end(), pid) != pinned_.end();
}

void PidFilter::save_state(util::ckpt::Writer& w) const {
  w.put_u64(last_ops_.size());
  for (const auto& [pid, ops] : last_ops_) {
    w.put_u64(pid);
    w.put_u64(ops);
  }
}

void PidFilter::load_state(util::ckpt::Reader& r) {
  last_ops_.clear();
  const std::uint64_t count = r.get_u64();
  last_ops_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto pid = static_cast<mem::Pid>(r.get_u64());
    const std::uint64_t ops = r.get_u64();
    last_ops_.emplace_back(pid, ops);
  }
}

}  // namespace tmprof::core
