#pragma once
/// \file numa_maps.hpp
/// The user-space reporting interface (Section III-B3): the paper modifies
/// `/proc/<pid>/numa_maps` so the daemon can read per-mapping placement and
/// profiling statistics. This module renders the same view: one line per
/// contiguous virtual mapping, with page counts per tier and accumulated
/// A-bit / trace sample counts from the page-descriptor store.

#include <string>

#include "core/page_stats.hpp"
#include "sim/system.hpp"

namespace tmprof::core {

/// Render one process's mappings in numa_maps style:
///   <va> <size> pages=<n> tier0=<n> tier1=<n> abit=<n> trace=<n> huge
/// Contiguous same-page-size runs are coalesced into one line.
[[nodiscard]] std::string numa_maps(sim::System& system, mem::Pid pid,
                                    const PageStatsStore& store);

/// All processes, separated by `==== pid <pid> ====` headers.
[[nodiscard]] std::string numa_maps_all(sim::System& system,
                                        const PageStatsStore& store);

}  // namespace tmprof::core
