#pragma once
/// \file ranking.hpp
/// Hotness ranking — Step 1 of the TMP-powered placement mechanism. An
/// epoch's per-page observations from each profiling source are fused into
/// a single rank; the paper uses a plain sum because Fig. 2 shows the two
/// event populations have comparable magnitude. Alternative fusion modes
/// are provided for the ablation benches.
///
/// All per-page accumulators here are util::FlatHashMap specializations
/// (docs/PERFORMANCE.md): contiguous open-addressing tables that retain
/// capacity across clear(), so the steady-state epoch loop touches no
/// allocator. The `_into` variants reuse caller-owned scratch for the same
/// reason; the value-returning forms remain for cold paths and tests.

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/page_key.hpp"
#include "mem/addr.hpp"
#include "util/flat_map.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::core {

/// Flat map keyed by page identity. The default-initialized value of a
/// fresh slot is `V{}`, matching unordered_map's operator[] semantics.
template <typename V>
using PageMap = util::FlatHashMap<PageKey, V, PageKeyHash>;

/// Per-page event tallies (A-bit hits, trace samples, PML writes).
using PageCountMap = PageMap<std::uint32_t>;
/// Per-page ground-truth access counts (can exceed 2^32 over long runs).
using TruthMap = PageMap<std::uint64_t>;
/// Set of page identities (first-touch tracking, seen-page dedup).
using PageKeySet = util::FlatHashSet<PageKey, PageKeyHash>;

/// Per-page observations of one epoch, as collected by the TMP driver.
///
/// Under the sketch hotness front-end (DriverConfig::hotness) these maps
/// hold the candidate pages' one-sided count-min estimates instead of
/// exact tallies: a page's value is >= its true count, and pages below the
/// candidate admission floor are absent. Every consumer in this header —
/// ranking fusion, top-K selection, checkpoint serialization — is
/// order/byte-stable over whatever counts it is given and makes no
/// exactness assumption; consumers that do (Fig. 5 CDFs) must go through
/// TmpDriver::trace_counts_4k()/abit_counts(), which enforce exact mode.
struct EpochObservation {
  std::uint32_t epoch = 0;
  /// A-bit observations per page (head-keyed; 1 per scan that saw A set).
  PageCountMap abit;
  /// Trace samples per page (head-keyed; huge pages aggregate their 4 KiB
  /// sample addresses).
  PageCountMap trace;
  /// Dirty-page log entries per page (PML; only populated when the driver
  /// enables Page-Modification Logging). Counts D-bit 0→1 transitions, a
  /// write-history signal for NVM-write-averse policies.
  PageCountMap writes;
  /// Device-side hot-page counts per page (DevMon top-K reports; only
  /// populated when DriverConfig::devmon is enabled). Counts every line
  /// fill the page's slow-tier device served — no sampling sparsity, but
  /// zero for fast-tier residents (the device is blind to other tiers).
  PageCountMap devmon;

  void clear() {
    abit.clear();
    trace.clear();
    writes.clear();
    devmon.clear();
  }

  /// Constant-time exchange — the driver hands a finished epoch out and
  /// takes the (cleared, capacity-retaining) previous buffers back.
  void swap(EpochObservation& other) noexcept {
    std::swap(epoch, other.epoch);
    abit.swap(other.abit);
    trace.swap(other.trace);
    writes.swap(other.writes);
    devmon.swap(other.devmon);
  }
};

/// How to fuse the sources into one rank.
enum class FusionMode : std::uint8_t {
  Sum,        ///< abit + trace (the paper's choice)
  AbitOnly,   ///< "piecemeal" baseline 1
  TraceOnly,  ///< "piecemeal" baseline 2
  Max,        ///< max(abit, trace)
  Weighted,   ///< abit + weight * trace
  SumDev,     ///< abit + trace + devmon_weight * devmon (docs/TOPOLOGY.md)
  DevOnly,    ///< devmon alone (device-counter ablation baseline)
};

[[nodiscard]] constexpr std::string_view to_string(FusionMode mode) noexcept {
  switch (mode) {
    case FusionMode::Sum: return "sum";
    case FusionMode::AbitOnly: return "abit-only";
    case FusionMode::TraceOnly: return "trace-only";
    case FusionMode::Max: return "max";
    case FusionMode::Weighted: return "weighted";
    case FusionMode::SumDev: return "sum-dev";
    case FusionMode::DevOnly: return "devmon-only";
  }
  return "?";
}

/// One ranked page.
struct PageRank {
  PageKey key;
  std::uint64_t rank = 0;
  std::uint32_t abit = 0;
  std::uint32_t trace = 0;
  std::uint32_t writes = 0;  ///< PML evidence (0 unless PML enabled)
  std::uint32_t devmon = 0;  ///< device-counter evidence (0 unless DevMon on)
};

/// Fusion mode plus its per-source weights, bundled so call sites that grow
/// a new signal don't grow a new positional double. The two-argument
/// build_ranking* forms below forward here with default weights.
struct FusionParams {
  FusionMode mode = FusionMode::Sum;
  double trace_weight = 1.0;   ///< FusionMode::Weighted
  double devmon_weight = 1.0;  ///< FusionMode::SumDev
};

/// The strict total order rankings are sorted by: descending rank, ties
/// broken by ascending key. Total over distinct pages, which is what makes
/// the top-K prefix of a partial sort bitwise identical to the full sort.
/// (A functor rather than a free function so std::sort can inline it.)
struct RankOrder {
  [[nodiscard]] bool operator()(const PageRank& a,
                                const PageRank& b) const noexcept {
    if (a.rank != b.rank) return a.rank > b.rank;
    return a.key < b.key;
  }
};

/// Reusable merge buffer for build_ranking_into / build_ranking_topk_into.
/// Holds its capacity across calls; one per daemon/evaluator is enough.
/// Maps each page to its index in the output vector under construction —
/// a u32 payload keeps the probe table at half the footprint of mapping
/// straight to PageRank, and the fused entries build up sequentially in
/// the output instead of being strided back out of the table.
struct RankingScratch {
  PageMap<std::uint32_t> index;
};

/// Fuse an epoch's observations into a descending-rank list.
/// \param trace_weight  only used by FusionMode::Weighted.
[[nodiscard]] std::vector<PageRank> build_ranking(
    const EpochObservation& obs, FusionMode mode, double trace_weight = 1.0);

/// Allocation-reusing form: merges into `scratch`, writes the sorted
/// ranking into `out` (cleared first, capacity retained).
void build_ranking_into(const EpochObservation& obs, FusionMode mode,
                        double trace_weight, RankingScratch& scratch,
                        std::vector<PageRank>& out);

/// Full-parameter forms (all fusion weights). The FusionMode overloads
/// above forward here with FusionParams defaults.
void build_ranking_into(const EpochObservation& obs,
                        const FusionParams& params, RankingScratch& scratch,
                        std::vector<PageRank>& out);
void build_ranking_topk_into(const EpochObservation& obs,
                             const FusionParams& params, std::size_t k,
                             RankingScratch& scratch,
                             std::vector<PageRank>& out);

/// Top-K selection ranking: the first min(k, n) entries of the full
/// ranking, bitwise identical to `build_ranking(...)` truncated to k, via
/// std::nth_element + sort of the prefix (O(n + k log k) instead of
/// O(n log n)). k = 0 yields an empty ranking; k >= n degenerates to the
/// full sort. Callers that consume the *whole* ranking (BadgerTrap poison
/// sync, the daemon watchdog) must keep using build_ranking.
[[nodiscard]] std::vector<PageRank> build_ranking_topk(
    const EpochObservation& obs, FusionMode mode, double trace_weight,
    std::size_t k);

void build_ranking_topk_into(const EpochObservation& obs, FusionMode mode,
                             double trace_weight, std::size_t k,
                             RankingScratch& scratch,
                             std::vector<PageRank>& out);

/// Checkpoint serialization helpers. Maps are written in ascending PageKey
/// order so the byte stream is independent of in-memory slot order. These
/// round-trip whatever counts the maps hold — exact tallies or sketch-mode
/// estimates — without interpreting them.
void save_page_counts(util::ckpt::Writer& w, const PageCountMap& counts);
void load_page_counts(util::ckpt::Reader& r, PageCountMap& counts);
void save_observation(util::ckpt::Writer& w, const EpochObservation& obs);
void load_observation(util::ckpt::Reader& r, EpochObservation& obs);
void save_ranking(util::ckpt::Writer& w, const std::vector<PageRank>& ranking);
void load_ranking(util::ckpt::Reader& r, std::vector<PageRank>& ranking);

}  // namespace tmprof::core
