#pragma once
/// \file ranking.hpp
/// Hotness ranking — Step 1 of the TMP-powered placement mechanism. An
/// epoch's per-page observations from each profiling source are fused into
/// a single rank; the paper uses a plain sum because Fig. 2 shows the two
/// event populations have comparable magnitude. Alternative fusion modes
/// are provided for the ablation benches.

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/page_key.hpp"
#include "mem/addr.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::core {

/// Per-page observations of one epoch, as collected by the TMP driver.
struct EpochObservation {
  std::uint32_t epoch = 0;
  /// A-bit observations per page (head-keyed; 1 per scan that saw A set).
  std::unordered_map<PageKey, std::uint32_t, PageKeyHash> abit;
  /// Trace samples per page (head-keyed; huge pages aggregate their 4 KiB
  /// sample addresses).
  std::unordered_map<PageKey, std::uint32_t, PageKeyHash> trace;
  /// Dirty-page log entries per page (PML; only populated when the driver
  /// enables Page-Modification Logging). Counts D-bit 0→1 transitions, a
  /// write-history signal for NVM-write-averse policies.
  std::unordered_map<PageKey, std::uint32_t, PageKeyHash> writes;

  void clear() {
    abit.clear();
    trace.clear();
    writes.clear();
  }
};

/// How to fuse the two sources into one rank.
enum class FusionMode : std::uint8_t {
  Sum,        ///< abit + trace (the paper's choice)
  AbitOnly,   ///< "piecemeal" baseline 1
  TraceOnly,  ///< "piecemeal" baseline 2
  Max,        ///< max(abit, trace)
  Weighted,   ///< abit + weight * trace
};

[[nodiscard]] constexpr std::string_view to_string(FusionMode mode) noexcept {
  switch (mode) {
    case FusionMode::Sum: return "sum";
    case FusionMode::AbitOnly: return "abit-only";
    case FusionMode::TraceOnly: return "trace-only";
    case FusionMode::Max: return "max";
    case FusionMode::Weighted: return "weighted";
  }
  return "?";
}

/// One ranked page.
struct PageRank {
  PageKey key;
  std::uint64_t rank = 0;
  std::uint32_t abit = 0;
  std::uint32_t trace = 0;
  std::uint32_t writes = 0;  ///< PML evidence (0 unless PML enabled)
};

/// Fuse an epoch's observations into a descending-rank list.
/// \param trace_weight  only used by FusionMode::Weighted.
[[nodiscard]] std::vector<PageRank> build_ranking(
    const EpochObservation& obs, FusionMode mode, double trace_weight = 1.0);

/// Checkpoint serialization helpers. Maps are written in ascending PageKey
/// order so the byte stream is independent of unordered_map iteration.
void save_page_counts(
    util::ckpt::Writer& w,
    const std::unordered_map<PageKey, std::uint32_t, PageKeyHash>& counts);
void load_page_counts(
    util::ckpt::Reader& r,
    std::unordered_map<PageKey, std::uint32_t, PageKeyHash>& counts);
void save_observation(util::ckpt::Writer& w, const EpochObservation& obs);
void load_observation(util::ckpt::Reader& r, EpochObservation& obs);
void save_ranking(util::ckpt::Writer& w, const std::vector<PageRank>& ranking);
void load_ranking(util::ckpt::Reader& r, std::vector<PageRank>& ranking);

}  // namespace tmprof::core
