#include "core/daemon.hpp"

#include <sstream>

#include "pmu/events.hpp"
#include "util/assert.hpp"

namespace tmprof::core {

TmpDaemon::TmpDaemon(sim::System& system, const DaemonConfig& config)
    : system_(system),
      config_(config),
      driver_(system, config.driver),
      abit_gate_(config.gate_threshold),
      trace_gate_(config.gate_threshold),
      pid_filter_(config.pid_filter) {
  // Program the cheap always-on counters the daemon polls. These fit in the
  // PMU's registers, so no multiplexing distortion affects the gates.
  system_.pmu().program_all(
      {pmu::Event::LlcMiss, pmu::Event::DtlbWalk, pmu::Event::RetiredUops});
}

ProfileSnapshot TmpDaemon::tick() {
  // 1. Read the HWPC miss counters accumulated over the elapsed period.
  const std::uint64_t llc_miss = system_.pmu().read_total(pmu::Event::LlcMiss);
  const std::uint64_t tlb_walk = system_.pmu().read_total(pmu::Event::DtlbWalk);
  const std::uint64_t llc_delta = llc_miss - last_llc_miss_;
  const std::uint64_t tlb_delta = tlb_walk - last_tlb_walk_;
  last_llc_miss_ = llc_miss;
  last_tlb_walk_ = tlb_walk;

  // 2. Gate each expensive mechanism on its cheap proxy counter.
  bool run_abit = true;
  bool run_trace = true;
  if (config_.gating_enabled) {
    run_abit = abit_gate_.update(tlb_delta);
    run_trace = trace_gate_.update(llc_delta);
  }
  driver_.set_trace_enabled(run_trace);

  // 3. Re-evaluate the PID filter (at its own cadence — the paper
  //    re-evaluates once per second) and scan the survivors' page tables.
  monitors::AbitScanResult scan{};
  if (config_.pid_filter_enabled) {
    const bool due = !filter_ever_ran_ ||
                     system_.now() - last_filter_eval_ >=
                         config_.pid_filter_period_ns;
    if (due) {
      tracked_pids_ = pid_filter_.select(system_.processes());
      filter_ever_ran_ = true;
      last_filter_eval_ = system_.now();
    }
  } else {
    tracked_pids_.clear();
    for (const sim::Process* p : system_.processes()) {
      tracked_pids_.push_back(p->pid());
    }
  }
  if (run_abit) {
    scan = driver_.scan_processes(tracked_pids_);
  }
  if (config_.charge_overhead) {
    system_.advance_time(scan.cost_ns);
  }

  // 4. Close the epoch and publish the fused ranking.
  ProfileSnapshot snapshot;
  snapshot.observation = driver_.end_epoch();
  snapshot.epoch = snapshot.observation.epoch;
  snapshot.ranking =
      build_ranking(snapshot.observation, config_.fusion, config_.trace_weight);
  snapshot.abit_ran = run_abit;
  snapshot.trace_ran = run_trace;
  return snapshot;
}

std::string TmpDaemon::dump(const ProfileSnapshot& snapshot,
                            std::size_t top_n) {
  std::ostringstream os;
  os << "epoch=" << snapshot.epoch << " pages=" << snapshot.ranking.size()
     << " abit_ran=" << (snapshot.abit_ran ? 1 : 0)
     << " trace_ran=" << (snapshot.trace_ran ? 1 : 0) << '\n';
  std::size_t shown = 0;
  for (const PageRank& pr : snapshot.ranking) {
    if (shown++ >= top_n) break;
    os << std::hex << "0x" << pr.key.page_va << std::dec
       << " pid=" << pr.key.pid << " rank=" << pr.rank
       << " abit=" << pr.abit << " trace=" << pr.trace << '\n';
  }
  return os.str();
}

}  // namespace tmprof::core
