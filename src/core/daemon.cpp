#include "core/daemon.hpp"

#include <algorithm>
#include <sstream>

#include "pmu/events.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/ckpt.hpp"
#include "util/log.hpp"

namespace tmprof::core {

TmpDaemon::TmpDaemon(sim::System& system, const DaemonConfig& config)
    : system_(system),
      config_(config),
      driver_(system, config.driver),
      abit_gate_(config.gate_threshold),
      trace_gate_(config.gate_threshold),
      pid_filter_(config.pid_filter),
      fault_(config.fault) {
  // Program the cheap always-on counters the daemon polls. These fit in the
  // PMU's registers, so no multiplexing distortion affects the gates.
  system_.pmu().program_all(
      {pmu::Event::LlcMiss, pmu::Event::DtlbWalk, pmu::Event::RetiredUops});
  // The driver consults the daemon's injector for its own fault sites
  // (trace-buffer overflow, scan abort), so one seed covers both layers.
  driver_.set_fault_injector(&fault_);
}

void TmpDaemon::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  driver_.set_telemetry(telemetry);
  if (telemetry == nullptr) {
    t_ticks_ = {};
    t_scans_run_ = {};
    t_abit_gated_ = {};
    t_trace_gated_ = {};
    t_hwpc_wraps_ = {};
    t_rescaled_ = {};
    t_fallback_ = {};
    t_qos_fallback_ = {};
    t_pinned_ = {};
    t_tracked_pids_ = {};
    t_ladder_state_ = {};
    return;
  }
  telemetry::MetricsRegistry& m = telemetry->metrics();
  t_ticks_ = m.counter("daemon_ticks_total");
  t_scans_run_ = m.counter("daemon_scans_run_total");
  t_abit_gated_ = m.counter("daemon_abit_gated_total");
  t_trace_gated_ = m.counter("daemon_trace_gated_total");
  t_hwpc_wraps_ = m.counter("daemon_hwpc_wraps_total");
  t_rescaled_ = m.counter("daemon_rescaled_epochs_total");
  t_fallback_ = m.counter("daemon_fallback_epochs_total");
  t_qos_fallback_ = m.counter("daemon_qos_fallback_epochs_total");
  t_pinned_ = m.counter("daemon_pinned_epochs_total");
  t_tracked_pids_ = m.gauge("daemon_tracked_pids");
  t_ladder_state_ = m.gauge("daemon_ladder_state");
}

ProfileSnapshot TmpDaemon::tick() {
  ProfileSnapshot snapshot;
  tick_into(snapshot);
  return snapshot;
}

void TmpDaemon::tick_into(ProfileSnapshot& snapshot) {
  const std::uint64_t seq = tick_seq_++;
  const util::SimNs tick_begin = system_.now();
  t_ticks_.inc();

  // 1. Read the HWPC miss counters accumulated over the elapsed period.
  // Injected wraps truncate the cumulative reading to its low bits, the way
  // a narrow hardware counter overflows between polls.
  std::uint64_t llc_miss = system_.pmu().read_total(pmu::Event::LlcMiss);
  std::uint64_t tlb_walk = system_.pmu().read_total(pmu::Event::DtlbWalk);
  if (fault_.enabled(util::FaultSite::HwpcWrap)) {
    if (fault_.fire(util::FaultSite::HwpcWrap, util::fault_key(0x11c, seq))) {
      llc_miss &= 0xfff;
    }
    if (fault_.fire(util::FaultSite::HwpcWrap, util::fault_key(0x71b, seq))) {
      tlb_walk &= 0xfff;
    }
  }
  // A reading below the previous one can only be a wrap: hold the previous
  // delta (the gates keep their last sane view) and leave `last` untouched
  // so the next honest reading resynchronizes.
  const auto delta_of = [this](std::uint64_t reading, std::uint64_t& last,
                               std::uint64_t& prev_delta, const char* name) {
    if (reading < last) {
      ++degrade_.hwpc_wraps;
      t_hwpc_wraps_.inc();
      TMPROF_LOG_WARN << "tmp-daemon: " << name << " counter wrapped ("
                      << reading << " < " << last
                      << "); holding previous delta";
      return prev_delta;
    }
    const std::uint64_t delta = reading - last;
    last = reading;
    prev_delta = delta;
    return delta;
  };
  const std::uint64_t llc_delta =
      delta_of(llc_miss, last_llc_miss_, prev_llc_delta_, "llc-miss");
  const std::uint64_t tlb_delta =
      delta_of(tlb_walk, last_tlb_walk_, prev_tlb_delta_, "dtlb-walk");

  // 2. Gate each expensive mechanism on its cheap proxy counter.
  bool run_abit = true;
  bool run_trace = true;
  if (config_.gating_enabled) {
    run_abit = abit_gate_.update(tlb_delta);
    run_trace = trace_gate_.update(llc_delta);
  }
  driver_.set_trace_enabled(run_trace);

  // 3. Re-evaluate the PID filter (at its own cadence — the paper
  //    re-evaluates once per second) and scan the survivors' page tables.
  monitors::AbitScanResult scan{};
  if (config_.pid_filter_enabled) {
    const bool due = !filter_ever_ran_ ||
                     system_.now() - last_filter_eval_ >=
                         config_.pid_filter_period_ns;
    if (due) {
      tracked_pids_ = pid_filter_.select(system_.processes());
      filter_ever_ran_ = true;
      last_filter_eval_ = system_.now();
    }
  } else {
    tracked_pids_.clear();
    for (const sim::Process* p : system_.processes()) {
      tracked_pids_.push_back(p->pid());
    }
  }
  if (run_abit) {
    scan = driver_.scan_processes(tracked_pids_);
    t_scans_run_.inc();
  } else {
    t_abit_gated_.inc();
  }
  if (!run_trace) t_trace_gated_.inc();
  t_tracked_pids_.set(tracked_pids_.size());
  if (config_.charge_overhead) {
    system_.advance_time(scan.cost_ns);
  }

  // 4. Close the epoch and publish the fused ranking. `snapshot` may carry
  // a previous epoch: end_epoch_into recycles its observation buffers, and
  // the sticky flags are reset here.
  driver_.end_epoch_into(snapshot.observation);
  snapshot.epoch = snapshot.observation.epoch;
  snapshot.abit_ran = run_abit;
  snapshot.trace_ran = run_trace;
  snapshot.abit_aborted = scan.aborted;
  snapshot.pinned = false;
  snapshot.trace_fallback = false;
  snapshot.qos_fallback = false;
  degrade_.scans_aborted = driver_.scans_aborted();
  degrade_.trace_dropped = driver_.trace_samples_dropped();

  // 5. Degradation ladder for trace-sample loss: a little loss rescales the
  //    surviving samples (they remain an unbiased subsample); heavy loss
  //    abandons the trace source for this epoch and ranks on A bits alone.
  {
    const std::uint64_t kept = driver_.trace_samples_kept();
    const std::uint64_t dropped = driver_.trace_samples_dropped();
    const std::uint64_t kept_delta = kept - last_trace_kept_;
    const std::uint64_t dropped_delta = dropped - last_trace_dropped_;
    last_trace_kept_ = kept;
    last_trace_dropped_ = dropped;
    const std::uint64_t total = kept_delta + dropped_delta;
    const double loss =
        total == 0 ? 0.0
                   : static_cast<double>(dropped_delta) /
                         static_cast<double>(total);
    snapshot.trace_loss = loss;
    snapshot.trace_dropped = dropped_delta;

    FusionMode fusion = config_.fusion;
    double weight = config_.trace_weight;
    if (loss >= config_.trace_fallback_threshold &&
        fusion != FusionMode::AbitOnly) {
      if (qos_is_batch_ && loss < config_.qos_full_fallback_threshold &&
          (fusion == FusionMode::Sum || fusion == FusionMode::Weighted)) {
        // QoS-selective rung (docs/CONSOLIDATION.md): batch tenants shed
        // their trace signal first — their pages get re-ranked on A bits
        // alone below — while latency tenants keep the rescaled mixed
        // ranking until loss reaches qos_full_fallback_threshold.
        weight = (fusion == FusionMode::Sum ? 1.0 : weight) / (1.0 - loss);
        fusion = FusionMode::Weighted;
        snapshot.qos_fallback = true;
        ++degrade_.qos_fallback_epochs;
        t_qos_fallback_.inc();
        TMPROF_LOG_WARN << "tmp-daemon: epoch " << snapshot.epoch << " lost "
                        << dropped_delta << "/" << total
                        << " trace samples; degrading batch tenants to "
                           "abit-only ranking";
      } else {
        fusion = FusionMode::AbitOnly;
        snapshot.trace_fallback = true;
        ++degrade_.fallback_epochs;
        t_fallback_.inc();
        TMPROF_LOG_WARN << "tmp-daemon: epoch " << snapshot.epoch << " lost "
                        << dropped_delta << "/" << total
                        << " trace samples; falling back to abit-only fusion";
      }
    } else if (loss > config_.trace_rescale_threshold &&
               (fusion == FusionMode::Sum || fusion == FusionMode::Weighted)) {
      // Rescaling only changes a *mixed* ranking; Max and TraceOnly orders
      // are invariant under a constant trace factor, so they either ride
      // out the loss or (above) fall back.
      weight = (fusion == FusionMode::Sum ? 1.0 : weight) / (1.0 - loss);
      fusion = FusionMode::Weighted;
      ++degrade_.rescaled_epochs;
      t_rescaled_.inc();
    }
    const FusionParams fusion_params{fusion, weight, config_.devmon_weight};
    if (config_.ranking_top_k > 0 && !snapshot.qos_fallback) {
      build_ranking_topk_into(snapshot.observation, fusion_params,
                              config_.ranking_top_k, ranking_scratch_,
                              snapshot.ranking);
    } else {
      build_ranking_into(snapshot.observation, fusion_params,
                         ranking_scratch_, snapshot.ranking);
      if (snapshot.qos_fallback) {
        // Demote batch pages to their A-bit evidence and restore the total
        // order. The full ranking is built first so the top-K prefix after
        // stripping matches what a full re-rank would publish.
        for (PageRank& pr : snapshot.ranking) {
          if (qos_is_batch_(pr.key.pid)) {
            pr.rank = pr.abit;
            pr.trace = 0;
          }
        }
        std::sort(snapshot.ranking.begin(), snapshot.ranking.end(),
                  RankOrder{});
        if (config_.ranking_top_k > 0 &&
            snapshot.ranking.size() > config_.ranking_top_k) {
          snapshot.ranking.resize(config_.ranking_top_k);
        }
      }
    }
  }

  // 6. Watchdog: consecutive aborted/empty scans mean the A-bit view has
  //    gone dark. Serve the last good ranking (pinned, logged) rather than
  //    an empty or badly degraded one; recovery is automatic on the next
  //    good scan.
  const bool bad_scan =
      snapshot.abit_aborted || (run_abit && snapshot.observation.abit.empty());
  if (bad_scan) {
    ++bad_scans_;
  } else if (run_abit) {
    bad_scans_ = 0;
  }
  const bool good = !snapshot.abit_aborted && !snapshot.ranking.empty();
  if (good) {
    last_good_ranking_ = snapshot.ranking;
  } else if (config_.watchdog_threshold != 0 &&
             bad_scans_ >= config_.watchdog_threshold &&
             !last_good_ranking_.empty()) {
    snapshot.ranking = last_good_ranking_;
    snapshot.pinned = true;
    ++degrade_.pinned_epochs;
    t_pinned_.inc();
    TMPROF_LOG_WARN << "tmp-daemon: " << bad_scans_
                    << " consecutive bad scans; pinning ranking from last "
                       "good epoch";
  }
  // Ladder position after this tick: 0 normal, 1 rescaled, 2 fallback,
  // 3 pinned (the most degraded state wins).
  if (telemetry_ != nullptr) {
    std::uint64_t ladder = 0;
    if (snapshot.pinned) ladder = 3;
    else if (snapshot.trace_fallback) ladder = 2;
    else if (snapshot.qos_fallback) ladder = 2;
    else if (snapshot.trace_loss > config_.trace_rescale_threshold) ladder = 1;
    t_ladder_state_.set(ladder);
    telemetry_->span("daemon.tick", tick_begin, system_.now(),
                     telemetry::kTidDaemon);
  }
}

std::string TmpDaemon::dump(const ProfileSnapshot& snapshot,
                            std::size_t top_n) {
  std::ostringstream os;
  os << "epoch=" << snapshot.epoch << " pages=" << snapshot.ranking.size()
     << " abit_ran=" << (snapshot.abit_ran ? 1 : 0)
     << " trace_ran=" << (snapshot.trace_ran ? 1 : 0) << '\n';
  std::size_t shown = 0;
  for (const PageRank& pr : snapshot.ranking) {
    if (shown++ >= top_n) break;
    os << std::hex << "0x" << pr.key.page_va << std::dec
       << " pid=" << pr.key.pid << " rank=" << pr.rank
       << " abit=" << pr.abit << " trace=" << pr.trace << '\n';
  }
  return os.str();
}

void TmpDaemon::save_state(util::ckpt::Writer& w) const {
  driver_.save_state(w);
  abit_gate_.save_state(w);
  trace_gate_.save_state(w);
  pid_filter_.save_state(w);
  w.put_u64(tracked_pids_.size());
  for (const mem::Pid pid : tracked_pids_) w.put_u64(pid);
  fault_.save_state(w);
  w.put_u64(degrade_.hwpc_wraps);
  w.put_u64(degrade_.scans_aborted);
  w.put_u64(degrade_.trace_dropped);
  w.put_u64(degrade_.rescaled_epochs);
  w.put_u64(degrade_.fallback_epochs);
  w.put_u64(degrade_.pinned_epochs);
  w.put_u64(degrade_.qos_fallback_epochs);
  w.put_u64(last_llc_miss_);
  w.put_u64(last_tlb_walk_);
  w.put_u64(prev_llc_delta_);
  w.put_u64(prev_tlb_delta_);
  w.put_u64(last_trace_kept_);
  w.put_u64(last_trace_dropped_);
  w.put_u32(bad_scans_);
  save_ranking(w, last_good_ranking_);
  w.put_u64(tick_seq_);
  w.put_bool(filter_ever_ran_);
  w.put_u64(last_filter_eval_);
}

void TmpDaemon::load_state(util::ckpt::Reader& r) {
  driver_.load_state(r);
  abit_gate_.load_state(r);
  trace_gate_.load_state(r);
  pid_filter_.load_state(r);
  tracked_pids_.clear();
  const std::uint64_t tracked = r.get_u64();
  tracked_pids_.reserve(tracked);
  for (std::uint64_t i = 0; i < tracked; ++i) {
    tracked_pids_.push_back(static_cast<mem::Pid>(r.get_u64()));
  }
  fault_.load_state(r);
  degrade_.hwpc_wraps = r.get_u64();
  degrade_.scans_aborted = r.get_u64();
  degrade_.trace_dropped = r.get_u64();
  degrade_.rescaled_epochs = r.get_u64();
  degrade_.fallback_epochs = r.get_u64();
  degrade_.pinned_epochs = r.get_u64();
  degrade_.qos_fallback_epochs = r.get_u64();
  last_llc_miss_ = r.get_u64();
  last_tlb_walk_ = r.get_u64();
  prev_llc_delta_ = r.get_u64();
  prev_tlb_delta_ = r.get_u64();
  last_trace_kept_ = r.get_u64();
  last_trace_dropped_ = r.get_u64();
  bad_scans_ = r.get_u32();
  load_ranking(r, last_good_ranking_);
  tick_seq_ = r.get_u64();
  filter_ever_ran_ = r.get_bool();
  last_filter_eval_ = r.get_u64();
}

}  // namespace tmprof::core
