#pragma once
/// \file page_key.hpp
/// Stable page identity: (pid, page base VA). Physical frame numbers change
/// under migration, so rankings and policies key pages by their virtual
/// identity — host virtual addresses do not change when the page mover
/// relocates a page (Section IV, Step 3).

#include <cstdint>
#include <functional>

#include "mem/addr.hpp"

namespace tmprof::core {

struct PageKey {
  mem::Pid pid = 0;
  mem::VirtAddr page_va = 0;

  friend bool operator==(const PageKey&, const PageKey&) = default;
  friend auto operator<=>(const PageKey&, const PageKey&) = default;
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const noexcept {
    std::uint64_t h = k.page_va ^ (static_cast<std::uint64_t>(k.pid) << 48);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace tmprof::core
