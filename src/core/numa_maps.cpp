#include "core/numa_maps.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace tmprof::core {

namespace {

struct Vma {
  mem::VirtAddr start = 0;
  mem::VirtAddr end = 0;  // exclusive
  mem::PageSize size = mem::PageSize::k4K;
  std::uint64_t pages = 0;
  std::uint64_t tier0_pages = 0;
  std::uint64_t tier1_pages = 0;
  std::uint64_t abit = 0;
  std::uint64_t trace = 0;
};

void emit(std::ostringstream& os, const Vma& vma) {
  os << std::hex << "0x" << vma.start << std::dec << " size="
     << (vma.end - vma.start) / 1024 << "K pages=" << vma.pages
     << " tier0=" << vma.tier0_pages << " tier1=" << vma.tier1_pages
     << " abit=" << vma.abit << " trace=" << vma.trace
     << (vma.size == mem::PageSize::k2M ? " huge" : "") << '\n';
}

}  // namespace

std::string numa_maps(sim::System& system, mem::Pid pid,
                      const PageStatsStore& store) {
  sim::Process& proc = system.process(pid);
  std::ostringstream os;
  Vma current;
  bool open = false;
  proc.page_table().walk([&](mem::VirtAddr page_va, mem::PageSize size,
                             mem::Pte& pte) {
    const std::uint64_t bytes = mem::page_bytes(size);
    if (!open || page_va != current.end || size != current.size) {
      if (open) emit(os, current);
      current = Vma{};
      current.start = page_va;
      current.size = size;
      open = true;
    }
    current.end = page_va + bytes;
    ++current.pages;
    const mem::Pfn pfn = pte.pfn();
    if (system.phys().tier_of(pfn) == 0) ++current.tier0_pages;
    else ++current.tier1_pages;
    // Trace samples land anywhere inside a huge page's span; A-bit
    // observations are recorded on the head frame only.
    current.abit += store.desc(pfn).abit_total;
    for (std::uint64_t i = 0; i < mem::pages_in(size); ++i) {
      current.trace += store.desc(pfn + i).trace_total;
    }
  });
  if (open) emit(os, current);
  return os.str();
}

std::string numa_maps_all(sim::System& system, const PageStatsStore& store) {
  std::ostringstream os;
  for (sim::Process* proc : system.processes()) {
    os << "==== pid " << proc->pid() << " ====\n"
       << numa_maps(system, proc->pid(), store);
  }
  return os.str();
}

}  // namespace tmprof::core
