#pragma once
/// \file thermostat.hpp
/// Thermostat-style hot/cold classifier (Agarwal & Wenisch, ASPLOS'17 —
/// discussed in the paper's Related Work). Thermostat estimates per-page
/// access rates by BadgerTrap-poisoning a small random *sample* of pages
/// and counting their TLB-miss faults over an interval; sampled rates are
/// extrapolated to classify all pages against a hot threshold.
///
/// The paper notes the approach "assumes that the number of TLB misses and
/// the number of cache misses to a page are similar, which may not hold
/// for hot pages" — this classifier exists so that assumption can be
/// tested against TMP's dual-source profile (see bench/profiler_compare).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/ranking.hpp"
#include "monitors/badgertrap.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"

namespace tmprof::core {

struct ThermostatConfig {
  /// Fraction of each process's pages poisoned per interval.
  double sample_fraction = 0.05;
  /// Faults per interval at which a *sampled* page counts as hot.
  std::uint32_t hot_threshold_faults = 2;
  /// Fault handler cost (pure accounting; no slow-memory emulation).
  util::SimNs fault_cost_ns = 1 * util::kMicrosecond;
};

/// Interval-based sampling classifier.
class ThermostatClassifier {
 public:
  ThermostatClassifier(sim::System& system, const ThermostatConfig& config,
                       std::uint64_t seed = 0x7e4);
  ThermostatClassifier(const ThermostatClassifier&) = delete;
  ThermostatClassifier& operator=(const ThermostatClassifier&) = delete;
  ~ThermostatClassifier();

  /// Pick and poison a fresh random sample of pages (one per interval).
  /// Returns the number of pages sampled.
  std::uint64_t begin_interval();

  /// Re-arm fault delivery for the current sample (flushes cached
  /// translations). Thermostat polls this several times per interval:
  /// without it a hot page faults once, becomes TLB-resident, and then
  /// looks exactly as cold as a one-touch page — the TLB-miss ≈
  /// access-count assumption the paper warns about.
  void refresh();

  /// Close the interval: un-poison the sample and return the observations.
  /// Sampled pages report their fault counts; `hot_pages` receives the
  /// pages whose count met the threshold.
  [[nodiscard]] EpochObservation end_interval();

  [[nodiscard]] const std::vector<PageKey>& hot_pages() const noexcept {
    return hot_pages_;
  }
  [[nodiscard]] std::uint64_t faults_taken() const noexcept {
    return trap_.total_faults();
  }

 private:
  sim::System& system_;
  ThermostatConfig config_;
  monitors::BadgerTrap trap_;
  util::Rng rng_;
  std::vector<PageKey> sampled_;
  std::vector<PageKey> hot_pages_;
  std::uint32_t epoch_ = 0;
};

}  // namespace tmprof::core
