#include "core/autonuma.hpp"

#include <vector>

#include "util/assert.hpp"

namespace tmprof::core {

AutoNumaProfiler::AutoNumaProfiler(sim::System& system,
                                   const AutoNumaConfig& config)
    : system_(system), config_(config),
      trap_([&config] {
        monitors::BadgerTrapConfig trap_config;
        trap_config.unpoison_on_fault = true;
        // AutoNUMA's fault is pure overhead, not an emulated slow access.
        trap_config.fault_latency_ns = config.fault_cost_ns;
        trap_config.hot_extra_latency_ns = 0;
        trap_config.handler_cost_ns = 0;
        return trap_config;
      }()) {
  system_.set_badgertrap(&trap_);
}

AutoNumaProfiler::~AutoNumaProfiler() {
  // Leave no armed protections behind: a later fault would have no handler.
  for (sim::Process* proc : system_.processes()) {
    const mem::Pid pid = proc->pid();
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize, mem::Pte&) {
          if (trap_.is_poisoned(pid, page_va)) {
            trap_.unpoison(pid, proc->page_table(), page_va);
          }
        });
  }
  system_.set_badgertrap(nullptr);
}

util::SimNs AutoNumaProfiler::protect_pass() {
  util::SimNs cost = 0;
  for (sim::Process* proc : system_.processes()) {
    const mem::Pid pid = proc->pid();
    // Snapshot the process's mapped pages in VA order; slide the window.
    std::vector<std::pair<mem::VirtAddr, mem::PageSize>> pages;
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte&) {
          pages.emplace_back(page_va, size);
        });
    if (pages.empty()) continue;
    std::uint64_t& cursor = cursor_[pid];
    const std::uint32_t core = pid % system_.config().cores;
    for (std::uint64_t i = 0; i < config_.window_pages; ++i) {
      const auto& [page_va, size] = pages[cursor % pages.size()];
      cursor = (cursor + 1) % pages.size();
      trap_.poison(pid, proc->page_table(), system_.tlb(core), page_va);
      cost += config_.protect_cost_per_page_ns;
      if (config_.window_pages >= pages.size() && i + 1 >= pages.size()) {
        break;  // whole table covered; don't loop within one pass
      }
    }
  }
  system_.advance_time(cost);
  overhead_ns_ += cost;
  return cost;
}

EpochObservation AutoNumaProfiler::end_epoch() {
  EpochObservation obs;
  obs.epoch = epoch_++;
  // Hint faults are reported per (pid, page); compute deltas vs the last
  // epoch so each observation period stands alone.
  std::uint64_t faults_this_epoch = 0;
  for (sim::Process* proc : system_.processes()) {
    const mem::Pid pid = proc->pid();
    proc->page_table().walk(
        [&](mem::VirtAddr page_va, mem::PageSize, mem::Pte&) {
          const std::uint64_t total = trap_.fault_count(pid, page_va);
          if (total == 0) return;
          const PageKey key{pid, page_va};
          const std::uint64_t last = last_faults_[key];
          if (total > last) {
            // AutoNUMA observations fill the same role as A-bit samples:
            // page-granular touch evidence from the translation path.
            obs.abit[key] = static_cast<std::uint32_t>(total - last);
            last_faults_[key] = total;
            faults_this_epoch += total - last;
          }
        });
  }
  faults_taken_ += faults_this_epoch;
  return obs;
}

}  // namespace tmprof::core
