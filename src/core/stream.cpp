#include "core/stream.hpp"

#include <algorithm>
#include <utility>

#include "core/hotness.hpp"
#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::core {

// --- StreamRanker ----------------------------------------------------------

void StreamRanker::configure(std::uint32_t top_k, std::uint32_t decay_shift) {
  TMPROF_EXPECTS(top_k >= 1);
  k_ = top_k;
  decay_shift_ = decay_shift;
  clear();
  heap_.reserve(k_);
}

void StreamRanker::clear() {
  heat_.clear();
  pos_.clear();
  heap_.clear();
}

void StreamRanker::set_pos(std::size_t i) {
  pos_[heap_[i].key] = static_cast<std::uint32_t>(i);
}

void StreamRanker::sift_up(std::size_t i) {
  // Min-heap on "strength": a parent must be weaker-or-equal than its
  // children, so the root is the eviction candidate.
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!stronger(heap_[parent], heap_[i])) break;
    std::swap(heap_[i], heap_[parent]);
    set_pos(i);
    i = parent;
  }
  set_pos(i);
}

void StreamRanker::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t weakest = i;
    if (left < n && stronger(heap_[weakest], heap_[left])) weakest = left;
    if (right < n && stronger(heap_[weakest], heap_[right])) weakest = right;
    if (weakest == i) break;
    std::swap(heap_[i], heap_[weakest]);
    set_pos(i);
    i = weakest;
  }
  set_pos(i);
}

void StreamRanker::add(const PageKey& key, std::uint64_t weight) {
  if (weight == 0) return;
  const std::uint64_t heat = (heat_[key] += weight);

  const auto it = pos_.find(key);
  if (it != pos_.end() && it->second != kNotInHeap) {
    // Already a member: its strength only grew, so it can only move toward
    // the leaves of the weakest-at-root heap.
    const std::size_t i = it->second;
    heap_[i].heat = heat;
    sift_down(i);
    return;
  }
  if (heap_.size() < k_) {
    heap_.push_back(Entry{key, heat});
    sift_up(heap_.size() - 1);
    return;
  }
  // Full heap: displace the root iff the candidate now outranks it. Heat is
  // monotone within an epoch, so a page rejected here simply retries on its
  // next add — exactness needs no revisit queue.
  if (stronger(Entry{key, heat}, heap_[0])) {
    pos_[heap_[0].key] = kNotInHeap;
    heap_[0] = Entry{key, heat};
    sift_down(0);
  }
}

std::uint64_t StreamRanker::heat_of(const PageKey& key) const {
  const auto it = heat_.find(key);
  return it != heat_.end() ? it->second : 0;
}

void StreamRanker::ranking_into(std::vector<PageRank>& out) const {
  out.clear();
  out.reserve(heap_.size());
  for (const Entry& e : heap_) {
    PageRank r;
    r.key = e.key;
    r.rank = e.heat;
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(), RankOrder{});
}

void StreamRanker::rebuild_heap() {
  // Canonical heap from map content: collect in ascending key order, take
  // the strongest K deterministically, then heapify. Every path that
  // crosses an epoch or checkpoint boundary funnels through here, so the
  // sealed heap never depends on the add order that grew the map.
  scratch_.clear();
  scratch_.reserve(heat_.size());
  heat_.fold_sorted([this](const PageKey& key, std::uint64_t heat) {
    scratch_.push_back(Entry{key, heat});
  });
  if (scratch_.size() > k_) {
    std::nth_element(scratch_.begin(), scratch_.begin() + k_, scratch_.end(),
                     &StreamRanker::stronger);
    scratch_.resize(k_);
  }
  heap_.assign(scratch_.begin(), scratch_.end());
  const std::size_t n = heap_.size();
  for (std::size_t i = n; i-- > 0;) sift_down(i);

  pos_.clear();
  for (std::size_t i = 0; i < n; ++i) set_pos(i);
}

void StreamRanker::seal() {
  scratch_.clear();
  scratch_.reserve(heat_.size());
  if (decay_shift_ < 64) {
    heat_.fold_sorted([this](const PageKey& key, std::uint64_t heat) {
      const std::uint64_t decayed = heat >> decay_shift_;
      if (decayed != 0) scratch_.push_back(Entry{key, decayed});
    });
  }
  heat_.clear();
  for (const Entry& e : scratch_) heat_[e.key] = e.heat;
  rebuild_heap();
}

void StreamRanker::save_state(util::ckpt::Writer& w) const {
  w.put_u32(k_);
  w.put_u32(decay_shift_);
  w.put_u64(heat_.size());
  heat_.fold_sorted([&w](const PageKey& key, std::uint64_t heat) {
    PageKeyCodec::save(w, key);
    w.put_u64(heat);
  });
}

void StreamRanker::load_state(util::ckpt::Reader& r) {
  const std::uint32_t k = r.get_u32();
  const std::uint32_t shift = r.get_u32();
  if (k != k_ || shift != decay_shift_) {
    throw util::ckpt::CkptError(
        "stream", "ranker geometry mismatch (top_k/decay_shift)");
  }
  clear();
  const std::uint64_t n = r.get_u64();
  heat_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const PageKey key = PageKeyCodec::load(r);
    heat_[key] = r.get_u64();
  }
  rebuild_heap();
}

// --- StreamTransport -------------------------------------------------------

StreamTransport::StreamTransport(const StreamConfig& config,
                                 std::uint32_t cores)
    : config_(config), cores_(cores) {
  TMPROF_EXPECTS(cores >= 1);
  rings_.reserve(cores_ + 2);
  for (std::uint32_t lane = 0; lane < cores_ + 2; ++lane) {
    rings_.push_back(std::make_unique<Ring>(config_.ring_capacity));
  }
}

std::uint64_t StreamTransport::drops_total() const noexcept {
  std::uint64_t total = carried_drops_;
  for (const auto& ring : rings_) total += ring->drops();
  return total;
}

std::uint64_t StreamTransport::high_water() const noexcept {
  std::uint64_t deepest = 0;
  for (const auto& ring : rings_) {
    deepest = std::max(deepest, ring->high_water());
  }
  return deepest;
}

void StreamTransport::reset_high_water() noexcept {
  for (auto& ring : rings_) ring->reset_high_water();
}

}  // namespace tmprof::core
