#pragma once
/// \file counters.hpp
/// Performance Monitoring Unit model. Ground-truth event streams always
/// increment the *true* counters; what software can *observe* goes through
/// a limited set of programmable registers. When more events are programmed
/// than registers exist, the PMU time-multiplexes them: each event is live
/// for a slice and its count is scaled by observed/live time — exactly the
/// verbosity loss Table I lists as the HWPC disadvantage.

#include <cstdint>
#include <vector>

#include "pmu/events.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::pmu {

/// One core's PMU.
class PmuCore {
 public:
  /// \param programmable_registers  simultaneously countable events
  ///        (6 on the paper's Zen 2 part).
  explicit PmuCore(std::uint32_t programmable_registers = 6);

  /// Hardware side: record `n` occurrences of `e` at sim time `now`.
  void record(Event e, util::SimNs now, std::uint64_t n = 1);

  /// Software side: program the set of events to observe. Re-programming
  /// resets observation state but not the true counts.
  void program(std::vector<Event> events);

  /// Advance the multiplexing rotation to `now`. Called by the system clock;
  /// harmless to call often.
  void tick(util::SimNs now);

  /// Observed (possibly multiplex-scaled) estimate of an event's count.
  /// Events that were never programmed read as 0 — software is blind to
  /// them, however large their true count.
  [[nodiscard]] std::uint64_t read(Event e) const;

  /// Ground truth, for tests/oracles only (real software has no such MSR).
  [[nodiscard]] std::uint64_t truth(Event e) const noexcept {
    return at(true_, e);
  }

  [[nodiscard]] bool multiplexing() const noexcept {
    return programmed_.size() > registers_;
  }
  [[nodiscard]] std::uint32_t registers() const noexcept { return registers_; }

  /// Length of one multiplexing slice.
  static constexpr util::SimNs kSliceNs = 4 * util::kMillisecond;

  /// Checkpoint hooks: true counters, programmed set and multiplexing
  /// rotation state all round-trip (util/ckpt.hpp).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  struct Observation {
    Event event = Event::RetiredUops;
    std::uint64_t raw = 0;          ///< occurrences seen while live
    util::SimNs live_ns = 0;        ///< total time this event was counting
    bool live = false;
  };

  void rotate(util::SimNs now);
  [[nodiscard]] Observation* find(Event e);
  [[nodiscard]] const Observation* find(Event e) const;

  std::uint32_t registers_;
  EventCounts true_{};
  std::vector<Observation> programmed_;
  std::size_t rotation_head_ = 0;   ///< first live observation index
  util::SimNs slice_start_ = 0;
  util::SimNs observe_start_ = 0;   ///< when program() was last called
  util::SimNs last_now_ = 0;
};

/// System-wide PMU: one PmuCore per core plus convenience aggregation.
class Pmu {
 public:
  explicit Pmu(std::uint32_t cores, std::uint32_t registers_per_core = 6);

  [[nodiscard]] PmuCore& core(std::uint32_t idx);
  [[nodiscard]] std::uint32_t cores() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }

  void program_all(const std::vector<Event>& events);
  void tick_all(util::SimNs now);

  /// Sum of observed counts across cores. Each call models one software
  /// MSR-read sweep and is counted in telemetry (`pmu_reads_total`).
  [[nodiscard]] std::uint64_t read_total(Event e) const;
  /// Sum of true counts across cores (oracle view; not a software read).
  [[nodiscard]] std::uint64_t truth_total(Event e) const;

  /// Attach telemetry counters (null detaches; docs/OBSERVABILITY.md).
  void set_telemetry_counter(telemetry::Counter reads) noexcept {
    reads_ = reads;
  }

  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  std::vector<PmuCore> cores_;
  telemetry::Counter reads_;
};

}  // namespace tmprof::pmu
