#pragma once
/// \file events.hpp
/// Hardware event taxonomy counted by the PMU model. TMP's daemon reads
/// LlcMiss and DtlbWalk rates to gate the expensive profiling mechanisms
/// (Section III-B4, optimization 1) and Fig. 2 compares PtwAbitSet with
/// LlcMiss populations.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tmprof::pmu {

enum class Event : std::uint8_t {
  RetiredUops,       ///< all retired micro-ops
  RetiredLoads,
  RetiredStores,
  L1DMiss,
  L2Miss,
  LlcAccess,
  LlcMiss,           ///< demand accesses that left the LLC
  DtlbL1Miss,        ///< missed the L1 dTLB (hit or miss in STLB)
  DtlbWalk,          ///< missed all TLB levels; hardware walk performed
  ItlbWalk,          ///< instruction fetch missed the TLBs; walk performed
  PtwAbitSet,        ///< walks that flipped an A bit 0→1 (Fig. 2 numerator)
  PtwDbitSet,        ///< walks/stores that flipped a D bit 0→1
  PageFault,         ///< not-present faults (first touch)
  ProtectionFault,   ///< poisoned-PTE faults (BadgerTrap)
  TlbShootdownIpi,   ///< inter-processor invalidations issued
  PrefetchFill,      ///< lines installed by the prefetcher
  MemReadTier1,      ///< demand fills served by tier 1
  MemReadTier2,      ///< demand fills served by tier 2
  PageMigration,     ///< pages moved between tiers
  kCount_,
};

inline constexpr std::size_t kEventCount =
    static_cast<std::size_t>(Event::kCount_);

[[nodiscard]] constexpr std::string_view event_name(Event e) noexcept {
  switch (e) {
    case Event::RetiredUops: return "retired_uops";
    case Event::RetiredLoads: return "retired_loads";
    case Event::RetiredStores: return "retired_stores";
    case Event::L1DMiss: return "l1d_miss";
    case Event::L2Miss: return "l2_miss";
    case Event::LlcAccess: return "llc_access";
    case Event::LlcMiss: return "llc_miss";
    case Event::DtlbL1Miss: return "dtlb_l1_miss";
    case Event::DtlbWalk: return "dtlb_walk";
    case Event::ItlbWalk: return "itlb_walk";
    case Event::PtwAbitSet: return "ptw_abit_set";
    case Event::PtwDbitSet: return "ptw_dbit_set";
    case Event::PageFault: return "page_fault";
    case Event::ProtectionFault: return "protection_fault";
    case Event::TlbShootdownIpi: return "tlb_shootdown_ipi";
    case Event::PrefetchFill: return "prefetch_fill";
    case Event::MemReadTier1: return "mem_read_tier1";
    case Event::MemReadTier2: return "mem_read_tier2";
    case Event::PageMigration: return "page_migration";
    case Event::kCount_: break;
  }
  return "?";
}

/// Dense per-event counter block.
using EventCounts = std::array<std::uint64_t, kEventCount>;

constexpr std::uint64_t& at(EventCounts& counts, Event e) noexcept {
  return counts[static_cast<std::size_t>(e)];
}
constexpr std::uint64_t at(const EventCounts& counts, Event e) noexcept {
  return counts[static_cast<std::size_t>(e)];
}

}  // namespace tmprof::pmu
