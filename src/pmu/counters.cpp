#include "pmu/counters.hpp"

#include "util/assert.hpp"

namespace tmprof::pmu {

PmuCore::PmuCore(std::uint32_t programmable_registers)
    : registers_(programmable_registers) {
  TMPROF_EXPECTS(programmable_registers >= 1);
}

void PmuCore::program(std::vector<Event> events) {
  programmed_.clear();
  programmed_.reserve(events.size());
  for (Event e : events) {
    TMPROF_EXPECTS(find(e) == nullptr);  // no duplicate programming
    Observation obs;
    obs.event = e;
    programmed_.push_back(obs);
  }
  rotation_head_ = 0;
  slice_start_ = last_now_;
  observe_start_ = last_now_;
  const std::size_t live_n =
      programmed_.size() < registers_ ? programmed_.size() : registers_;
  for (std::size_t i = 0; i < live_n; ++i) programmed_[i].live = true;
}

PmuCore::Observation* PmuCore::find(Event e) {
  for (auto& obs : programmed_) {
    if (obs.event == e) return &obs;
  }
  return nullptr;
}

const PmuCore::Observation* PmuCore::find(Event e) const {
  for (const auto& obs : programmed_) {
    if (obs.event == e) return &obs;
  }
  return nullptr;
}

void PmuCore::record(Event e, util::SimNs now, std::uint64_t n) {
  tick(now);
  at(true_, e) += n;
  if (Observation* obs = find(e); obs != nullptr && obs->live) {
    obs->raw += n;
  }
}

void PmuCore::tick(util::SimNs now) {
  if (now < last_now_) return;  // out-of-order hook; ignore
  last_now_ = now;
  if (!multiplexing()) return;
  while (now - slice_start_ >= kSliceNs) {
    rotate(slice_start_ + kSliceNs);
  }
}

void PmuCore::rotate(util::SimNs slice_end) {
  // Close the current slice: credit live time, advance the head.
  const util::SimNs lived = slice_end - slice_start_;
  std::size_t live_count = 0;
  for (auto& obs : programmed_) {
    if (obs.live) {
      obs.live_ns += lived;
      obs.live = false;
      ++live_count;
    }
  }
  TMPROF_ASSERT(live_count <= registers_);
  rotation_head_ = (rotation_head_ + registers_) % programmed_.size();
  for (std::size_t i = 0; i < registers_ && i < programmed_.size(); ++i) {
    programmed_[(rotation_head_ + i) % programmed_.size()].live = true;
  }
  slice_start_ = slice_end;
}

std::uint64_t PmuCore::read(Event e) const {
  const Observation* obs = find(e);
  if (obs == nullptr) return 0;
  if (!multiplexing()) return obs->raw;
  // Scale by the fraction of wall time the event was actually counting.
  util::SimNs live = obs->live_ns;
  if (obs->live) live += last_now_ - slice_start_;
  const util::SimNs total = last_now_ - observe_start_;
  if (live == 0 || total == 0) return obs->raw;
  const double scale = static_cast<double>(total) / static_cast<double>(live);
  return static_cast<std::uint64_t>(static_cast<double>(obs->raw) * scale);
}

Pmu::Pmu(std::uint32_t cores, std::uint32_t registers_per_core) {
  TMPROF_EXPECTS(cores >= 1);
  cores_.reserve(cores);
  for (std::uint32_t i = 0; i < cores; ++i) {
    cores_.emplace_back(registers_per_core);
  }
}

PmuCore& Pmu::core(std::uint32_t idx) {
  TMPROF_EXPECTS(idx < cores_.size());
  return cores_[idx];
}

void Pmu::program_all(const std::vector<Event>& events) {
  for (auto& core : cores_) core.program(events);
}

void Pmu::tick_all(util::SimNs now) {
  for (auto& core : cores_) core.tick(now);
}

std::uint64_t Pmu::read_total(Event e) const {
  std::uint64_t sum = 0;
  for (const auto& core : cores_) sum += core.read(e);
  return sum;
}

std::uint64_t Pmu::truth_total(Event e) const {
  std::uint64_t sum = 0;
  for (const auto& core : cores_) sum += core.truth(e);
  return sum;
}

}  // namespace tmprof::pmu
