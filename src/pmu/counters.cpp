#include "pmu/counters.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::pmu {

PmuCore::PmuCore(std::uint32_t programmable_registers)
    : registers_(programmable_registers) {
  TMPROF_EXPECTS(programmable_registers >= 1);
}

void PmuCore::program(std::vector<Event> events) {
  programmed_.clear();
  programmed_.reserve(events.size());
  for (Event e : events) {
    TMPROF_EXPECTS(find(e) == nullptr);  // no duplicate programming
    Observation obs;
    obs.event = e;
    programmed_.push_back(obs);
  }
  rotation_head_ = 0;
  slice_start_ = last_now_;
  observe_start_ = last_now_;
  const std::size_t live_n =
      programmed_.size() < registers_ ? programmed_.size() : registers_;
  for (std::size_t i = 0; i < live_n; ++i) programmed_[i].live = true;
}

PmuCore::Observation* PmuCore::find(Event e) {
  for (auto& obs : programmed_) {
    if (obs.event == e) return &obs;
  }
  return nullptr;
}

const PmuCore::Observation* PmuCore::find(Event e) const {
  for (const auto& obs : programmed_) {
    if (obs.event == e) return &obs;
  }
  return nullptr;
}

void PmuCore::record(Event e, util::SimNs now, std::uint64_t n) {
  tick(now);
  at(true_, e) += n;
  if (Observation* obs = find(e); obs != nullptr && obs->live) {
    obs->raw += n;
  }
}

void PmuCore::tick(util::SimNs now) {
  if (now < last_now_) return;  // out-of-order hook; ignore
  last_now_ = now;
  if (!multiplexing()) return;
  while (now - slice_start_ >= kSliceNs) {
    rotate(slice_start_ + kSliceNs);
  }
}

void PmuCore::rotate(util::SimNs slice_end) {
  // Close the current slice: credit live time, advance the head.
  const util::SimNs lived = slice_end - slice_start_;
  std::size_t live_count = 0;
  for (auto& obs : programmed_) {
    if (obs.live) {
      obs.live_ns += lived;
      obs.live = false;
      ++live_count;
    }
  }
  TMPROF_ASSERT(live_count <= registers_);
  rotation_head_ = (rotation_head_ + registers_) % programmed_.size();
  for (std::size_t i = 0; i < registers_ && i < programmed_.size(); ++i) {
    programmed_[(rotation_head_ + i) % programmed_.size()].live = true;
  }
  slice_start_ = slice_end;
}

std::uint64_t PmuCore::read(Event e) const {
  const Observation* obs = find(e);
  if (obs == nullptr) return 0;
  if (!multiplexing()) return obs->raw;
  // Scale by the fraction of wall time the event was actually counting.
  util::SimNs live = obs->live_ns;
  if (obs->live) live += last_now_ - slice_start_;
  const util::SimNs total = last_now_ - observe_start_;
  if (live == 0 || total == 0) return obs->raw;
  const double scale = static_cast<double>(total) / static_cast<double>(live);
  return static_cast<std::uint64_t>(static_cast<double>(obs->raw) * scale);
}

Pmu::Pmu(std::uint32_t cores, std::uint32_t registers_per_core) {
  TMPROF_EXPECTS(cores >= 1);
  cores_.reserve(cores);
  for (std::uint32_t i = 0; i < cores; ++i) {
    cores_.emplace_back(registers_per_core);
  }
}

PmuCore& Pmu::core(std::uint32_t idx) {
  TMPROF_EXPECTS(idx < cores_.size());
  return cores_[idx];
}

void Pmu::program_all(const std::vector<Event>& events) {
  for (auto& core : cores_) core.program(events);
}

void Pmu::tick_all(util::SimNs now) {
  for (auto& core : cores_) core.tick(now);
}

std::uint64_t Pmu::read_total(Event e) const {
  reads_.inc();
  std::uint64_t sum = 0;
  for (const auto& core : cores_) sum += core.read(e);
  return sum;
}

std::uint64_t Pmu::truth_total(Event e) const {
  std::uint64_t sum = 0;
  for (const auto& core : cores_) sum += core.truth(e);
  return sum;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void PmuCore::save_state(util::ckpt::Writer& w) const {
  for (const std::uint64_t count : true_) w.put_u64(count);
  w.put_u64(programmed_.size());
  for (const Observation& obs : programmed_) {
    w.put_u8(static_cast<std::uint8_t>(obs.event));
    w.put_u64(obs.raw);
    w.put_u64(obs.live_ns);
    w.put_bool(obs.live);
  }
  w.put_u64(rotation_head_);
  w.put_u64(slice_start_);
  w.put_u64(observe_start_);
  w.put_u64(last_now_);
}

void PmuCore::load_state(util::ckpt::Reader& r) {
  for (std::uint64_t& count : true_) count = r.get_u64();
  programmed_.resize(r.get_u64());
  for (Observation& obs : programmed_) {
    const std::uint8_t e = r.get_u8();
    if (e >= kEventCount) {
      throw util::ckpt::CkptError("pmu", "unknown event id " +
                                             std::to_string(e));
    }
    obs.event = static_cast<Event>(e);
    obs.raw = r.get_u64();
    obs.live_ns = r.get_u64();
    obs.live = r.get_bool();
  }
  rotation_head_ = r.get_u64();
  slice_start_ = r.get_u64();
  observe_start_ = r.get_u64();
  last_now_ = r.get_u64();
}

void Pmu::save_state(util::ckpt::Writer& w) const {
  w.put_u32(static_cast<std::uint32_t>(cores_.size()));
  for (const PmuCore& core : cores_) core.save_state(w);
}

void Pmu::load_state(util::ckpt::Reader& r) {
  const std::uint32_t n = r.get_u32();
  if (n != cores_.size()) {
    throw util::ckpt::CkptError("pmu", "core count mismatch: checkpoint has " +
                                           std::to_string(n));
  }
  for (PmuCore& core : cores_) core.load_state(r);
}

}  // namespace tmprof::pmu
