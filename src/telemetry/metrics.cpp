#include "telemetry/metrics.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::telemetry {

void MetricsRegistry::check_name(std::string_view name) {
  TMPROF_EXPECTS(!name.empty());
  for (const char c : name) {
    TMPROF_EXPECTS((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   c == '_');
  }
}

Counter MetricsRegistry::counter(std::string_view name) {
  check_name(name);
  return Counter(&counters_[std::string(name)]);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  check_name(name);
  return Gauge(&gauges_[std::string(name)]);
}

HistogramHandle MetricsRegistry::histogram(std::string_view name,
                                           std::uint64_t lo, std::uint64_t hi,
                                           std::size_t buckets) {
  check_name(name);
  auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), util::Histogram(lo, hi, buckets))
             .first;
  } else {
    TMPROF_EXPECTS(it->second.same_shape(util::Histogram(lo, hi, buckets)));
  }
  return HistogramHandle(&it->second);
}

void MetricsRegistry::ensure_shards(std::size_t n) {
  if (shard_counters_.size() < n) {
    shard_counters_.resize(n);
    shard_histograms_.resize(n);
  }
}

Counter MetricsRegistry::shard_counter(std::size_t shard,
                                       std::string_view name) {
  TMPROF_EXPECTS(shard < shard_counters_.size());
  check_name(name);
  // Pre-create the global cell so merge order cannot depend on which
  // shards saw traffic.
  (void)counter(name);
  return Counter(&shard_counters_[shard][std::string(name)]);
}

HistogramHandle MetricsRegistry::shard_histogram(std::size_t shard,
                                                 std::string_view name,
                                                 std::uint64_t lo,
                                                 std::uint64_t hi,
                                                 std::size_t buckets) {
  TMPROF_EXPECTS(shard < shard_histograms_.size());
  check_name(name);
  (void)histogram(name, lo, hi, buckets);
  auto& shard_map = shard_histograms_[shard];
  auto it = shard_map.find(std::string(name));
  if (it == shard_map.end()) {
    it = shard_map
             .emplace(std::string(name), util::Histogram(lo, hi, buckets))
             .first;
  }
  return HistogramHandle(&it->second);
}

void MetricsRegistry::merge_shards() {
  for (auto& shard : shard_counters_) {
    for (auto& [name, value] : shard) {
      counters_[name] += value;
      value = 0;
    }
  }
  for (auto& shard : shard_histograms_) {
    for (auto& [name, hist] : shard) {
      const auto it = histograms_.find(name);
      TMPROF_ASSERT(it != histograms_.end());
      it->second.merge(hist);
      hist.reset();
    }
  }
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::save_state(util::ckpt::Writer& w) const {
  for (const auto& shard : shard_counters_) {
    for (const auto& [name, value] : shard) {
      TMPROF_EXPECTS(value == 0);  // shards must be merged before a save
    }
  }
  w.put_u64(counters_.size());
  for (const auto& [name, value] : counters_) {
    w.put_str(name);
    w.put_u64(value);
  }
  w.put_u64(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    w.put_str(name);
    w.put_u64(value);
  }
  w.put_u64(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    w.put_str(name);
    w.put_u64(hist.lo());
    w.put_u64(hist.hi());
    w.put_u64(hist.buckets());
    w.put_u64(hist.total());
    w.put_u64(hist.underflow());
    w.put_u64(hist.overflow());
    w.put_u64(hist.value_sum());
    for (std::size_t b = 0; b < hist.buckets(); ++b) {
      w.put_u64(hist.count(b));
    }
  }
}

void MetricsRegistry::load_state(util::ckpt::Reader& r) {
  // Update cells *in place*: handles resolved before a resume point into
  // live map nodes, so existing nodes must never be destroyed. Cells the
  // checkpoint doesn't mention reset to zero (a resumed run re-resolves
  // the same instrumentation sites, so names line up in practice).
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : gauges_) value = 0;
  for (auto& [name, hist] : histograms_) hist.reset();
  const std::uint64_t n_counters = r.get_u64();
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    const std::string name = r.get_str();
    counters_[name] = r.get_u64();
  }
  const std::uint64_t n_gauges = r.get_u64();
  for (std::uint64_t i = 0; i < n_gauges; ++i) {
    const std::string name = r.get_str();
    gauges_[name] = r.get_u64();
  }
  const std::uint64_t n_hists = r.get_u64();
  for (std::uint64_t i = 0; i < n_hists; ++i) {
    const std::string name = r.get_str();
    const std::uint64_t lo = r.get_u64();
    const std::uint64_t hi = r.get_u64();
    const std::uint64_t buckets = r.get_u64();
    if (hi <= lo || buckets == 0) {
      throw util::ckpt::CkptError(
          "telemetry", "invalid histogram shape for '" + name + "'");
    }
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, util::Histogram(lo, hi, buckets)).first;
    } else if (!it->second.same_shape(util::Histogram(lo, hi, buckets))) {
      throw util::ckpt::CkptError(
          "telemetry", "histogram shape mismatch for '" + name + "'");
    }
    util::Histogram& hist = it->second;
    const std::uint64_t total = r.get_u64();
    const std::uint64_t underflow = r.get_u64();
    const std::uint64_t overflow = r.get_u64();
    const std::uint64_t sum = r.get_u64();
    // Rebuild through add() so internal tallies stay consistent: bucket
    // mass lands at each bucket's lower edge, under/overflow at the range
    // edges, then the exact value sum is patched in.
    for (std::uint64_t b = 0; b < buckets; ++b) {
      const std::uint64_t count = r.get_u64();
      if (count != 0) hist.add(hist.bucket_lo(b), count);
    }
    if (underflow != 0 && lo > 0) hist.add(lo - 1, underflow);
    if (overflow != 0) hist.add(hi, overflow);
    if (hist.total() != total) {
      throw util::ckpt::CkptError(
          "telemetry", "histogram count mismatch for '" + name + "'");
    }
    hist.set_value_sum(sum);
  }
}

}  // namespace tmprof::telemetry
