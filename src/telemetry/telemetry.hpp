#pragma once
/// \file telemetry.hpp
/// The telemetry facade every instrumented layer holds a (possibly null)
/// pointer to: a MetricsRegistry, a SpanTracer and the export scheduling.
/// Telemetry is **off by default** — layers receive a null `Telemetry*`,
/// resolve null handles, and every instrumentation site collapses to a
/// pointer test. With a sink attached, the same sites feed named metrics
/// and sim-time spans that export to Chrome trace JSON and Prometheus
/// text, either at run end or every N epochs (docs/OBSERVABILITY.md).
///
/// Determinism contract: every value in the registry and every span is a
/// pure function of simulated execution, so exports are bitwise identical
/// across engine thread counts and across checkpoint/resume cycles.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace tmprof::telemetry {

/// Chrome-trace track (tid) assignments, fixed so traces from different
/// runs line up. Per-shard engine tracks start at kTidShardBase + core.
inline constexpr std::uint32_t kTidRunner = 0;
inline constexpr std::uint32_t kTidMover = 1;
inline constexpr std::uint32_t kTidDaemon = 2;
inline constexpr std::uint32_t kTidShardBase = 16;

struct TelemetryConfig {
  /// Prometheus text output path ("" = don't write).
  std::string metrics_out;
  /// Chrome trace-event JSON output path ("" = don't write).
  std::string trace_out;
  /// Re-export every N completed epochs (0 = only at run end). Each export
  /// rewrites the output files in full, so the newest write always holds a
  /// consistent snapshot.
  std::uint32_t export_every = 0;
  /// Span ring capacity; overflow overwrites the oldest span (counted).
  std::size_t span_capacity = 1 << 16;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config);

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return registry_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return registry_;
  }
  [[nodiscard]] SpanTracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }

  /// Start a new Chrome-trace process group (one per bench run); spans
  /// recorded afterwards carry the new pid. Returns the pid. Re-beginning
  /// the current label reuses its pid (cold-start resume fallback).
  std::uint32_t begin_run(std::string label);
  [[nodiscard]] std::uint32_t current_pid() const noexcept {
    return current_pid_;
  }

  /// Record a completed span on the current run's process group. Ring
  /// overwrites bump the `telemetry_spans_dropped_total` counter.
  void span(std::string_view name, util::SimNs begin_ns, util::SimNs end_ns,
            std::uint32_t tid = 0);

  /// Export if `export_every` divides the number of completed epochs.
  void maybe_export(std::uint32_t completed_epochs);
  /// Export unconditionally (run end).
  void export_final();

  void write_chrome(std::ostream& os) const;
  void write_prometheus(std::ostream& os) const;

  /// Checkpoint hooks (util/ckpt.hpp): registry, span ring and run labels,
  /// so a resumed run exports byte-identical artifacts.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  void export_files();

  TelemetryConfig config_;
  MetricsRegistry registry_;
  SpanTracer tracer_;
  Counter spans_dropped_;
  Counter exports_;
  std::vector<std::pair<std::uint32_t, std::string>> run_labels_;
  std::uint32_t current_pid_ = 0;
};

}  // namespace tmprof::telemetry
