#pragma once
/// \file metrics.hpp
/// Named counters / gauges / histograms for the profiler's own telemetry
/// (docs/OBSERVABILITY.md). The registry hands out *handles*: trivially
/// copyable pointer wrappers whose update methods are a null check plus an
/// add, so a default-constructed (null) handle makes every instrumentation
/// site a compile-time-cheap no-op when telemetry is disabled.
///
/// Shard protocol: in the sharded access engine each simulated core
/// accumulates into its own shard-local cells (safe on that core's worker
/// thread), and `merge_shards()` folds them into the global cells at the
/// epoch barrier in ascending shard order — mirroring the PR-1 observer
/// protocol. Because the shard → core decomposition is fixed by the
/// configuration (never by thread count), merged values are bitwise
/// invariant across worker-pool sizes.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::telemetry {

/// Monotonically increasing count. Null handle = no-op.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  void add(std::uint64_t n) const noexcept {
    if (cell_ != nullptr) *cell_ += n;
  }
  void inc() const noexcept { add(1); }
  [[nodiscard]] explicit operator bool() const noexcept {
    return cell_ != nullptr;
  }

 private:
  std::uint64_t* cell_ = nullptr;
};

/// Last-written value (queue depths, ladder state). Null handle = no-op.
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::uint64_t* cell) : cell_(cell) {}
  void set(std::uint64_t v) const noexcept {
    if (cell_ != nullptr) *cell_ = v;
  }
  [[nodiscard]] explicit operator bool() const noexcept {
    return cell_ != nullptr;
  }

 private:
  std::uint64_t* cell_ = nullptr;
};

/// Value distribution backed by util::Histogram plus an exact weighted
/// value sum (Prometheus `_sum`). Null handle = no-op.
class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(util::Histogram* hist) : hist_(hist) {}
  void observe(std::uint64_t value, std::uint64_t weight = 1) const {
    if (hist_ != nullptr) hist_->add(value, weight);
  }
  [[nodiscard]] explicit operator bool() const noexcept {
    return hist_ != nullptr;
  }

 private:
  util::Histogram* hist_ = nullptr;
};

/// Owns every metric cell. Names must match [a-z0-9_]+ (enforced); counter
/// names should end in `_total` by convention. Cells live in node-based
/// maps, so handles stay valid for the registry's lifetime and exporters
/// iterate in sorted-name order — the export byte streams are independent
/// of registration order.
class MetricsRegistry {
 public:
  /// Resolve (creating on first use) a named global metric.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] HistogramHandle histogram(std::string_view name,
                                          std::uint64_t lo, std::uint64_t hi,
                                          std::size_t buckets);

  /// Grow the shard array to at least `n` shards (never shrinks).
  void ensure_shards(std::size_t n);
  [[nodiscard]] std::size_t shards() const noexcept {
    return shard_counters_.size();
  }

  /// Shard-local cells for the same named metrics. Only the owning shard's
  /// worker thread may touch them between barriers.
  [[nodiscard]] Counter shard_counter(std::size_t shard,
                                      std::string_view name);
  [[nodiscard]] HistogramHandle shard_histogram(std::size_t shard,
                                                std::string_view name,
                                                std::uint64_t lo,
                                                std::uint64_t hi,
                                                std::size_t buckets);

  /// Epoch barrier: fold every shard's cells into the globals in ascending
  /// shard order, then zero the shard cells. Caller must be the only
  /// thread running (the engines call this after joining their workers).
  void merge_shards();

  // --- exporter / test views (sorted by name) -----------------------------
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, util::Histogram>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] std::uint64_t gauge_value(std::string_view name) const;

  /// Checkpoint hooks (util/ckpt.hpp): global cells only — shard cells are
  /// transient inside an epoch and must be empty (merged) at save time.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  static void check_name(std::string_view name);

  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, util::Histogram> histograms_;
  std::vector<std::map<std::string, std::uint64_t>> shard_counters_;
  std::vector<std::map<std::string, util::Histogram>> shard_histograms_;
};

}  // namespace tmprof::telemetry
