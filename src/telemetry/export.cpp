#include "telemetry/export.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace tmprof::telemetry {

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';  // span names never carry control chars; stay valid
        } else {
          os << c;
        }
    }
  }
}

/// Simulated ns rendered as Chrome's microsecond timestamps with fixed
/// 3-digit sub-microsecond precision — pure integer formatting, so the
/// output is deterministic everywhere.
void put_ts(std::ostream& os, util::SimNs ns) {
  os << ns / 1000 << '.';
  const util::SimNs frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
}

struct Event {
  bool is_end = false;
  util::SimNs ts = 0;
  const Span* span = nullptr;
};

}  // namespace

void write_chrome_trace(
    std::ostream& os, const SpanTracer& tracer,
    const std::vector<std::pair<std::uint32_t, std::string>>& run_labels) {
  const std::vector<Span> spans = tracer.spans_in_order();

  // Group by (pid, tid); within a group order outer-before-inner so a
  // single stack pass emits a properly nested, balanced B/E sequence.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<const Span*>>
      groups;
  for (const Span& s : spans) groups[{s.pid, s.tid}].push_back(&s);

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [pid, label] : run_labels) {
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape(os, label);
    os << "\"}}";
  }
  for (auto& [key, group] : groups) {
    std::stable_sort(group.begin(), group.end(),
                     [](const Span* a, const Span* b) {
                       if (a->begin_ns != b->begin_ns) {
                         return a->begin_ns < b->begin_ns;
                       }
                       return a->end_ns > b->end_ns;  // outer span first
                     });
    struct Open {
      const Span* span;
      util::SimNs end;
    };
    std::vector<Event> events;
    events.reserve(group.size() * 2);
    std::vector<Open> stack;
    const auto pop = [&] {
      events.push_back(Event{true, stack.back().end, stack.back().span});
      stack.pop_back();
    };
    for (const Span* s : group) {
      while (!stack.empty() && stack.back().end <= s->begin_ns) pop();
      // A mis-nested span (overlapping its parent) is clamped to the
      // parent's extent so the B/E stream always nests. Recorded spans
      // nest by construction; this is a defensive invariant.
      util::SimNs end = s->end_ns;
      if (!stack.empty() && end > stack.back().end) end = stack.back().end;
      events.push_back(Event{false, s->begin_ns, s});
      stack.push_back(Open{s, end});
    }
    while (!stack.empty()) pop();
    for (const Event& ev : events) {
      comma();
      os << "{\"name\":\"";
      json_escape(os, ev.span->name);
      os << "\",\"ph\":\"" << (ev.is_end ? 'E' : 'B') << "\",\"ts\":";
      put_ts(os, ev.ts);
      os << ",\"pid\":" << key.first << ",\"tid\":" << key.second << '}';
    }
  }
  os << "],\"displayTimeUnit\":\"ns\"}\n";
}

void write_prometheus(std::ostream& os, const MetricsRegistry& registry,
                      const std::string& prefix) {
  for (const auto& [name, value] : registry.counters()) {
    os << "# TYPE " << prefix << name << " counter\n"
       << prefix << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : registry.gauges()) {
    os << "# TYPE " << prefix << name << " gauge\n"
       << prefix << name << ' ' << value << '\n';
  }
  for (const auto& [name, hist] : registry.histograms()) {
    os << "# TYPE " << prefix << name << " histogram\n";
    // Cumulative buckets: observations <= le. Underflow mass (< lo) is
    // below every finite edge; overflow mass only reaches +Inf.
    std::uint64_t cumulative = hist.underflow();
    for (std::size_t b = 0; b < hist.buckets(); ++b) {
      cumulative += hist.count(b);
      const std::uint64_t edge =
          b + 1 < hist.buckets() ? hist.bucket_lo(b + 1) : hist.hi();
      os << prefix << name << "_bucket{le=\"" << edge << "\"} " << cumulative
         << '\n';
    }
    os << prefix << name << "_bucket{le=\"+Inf\"} " << hist.total() << '\n'
       << prefix << name << "_sum " << hist.value_sum() << '\n'
       << prefix << name << "_count " << hist.total() << '\n';
  }
}

}  // namespace tmprof::telemetry
