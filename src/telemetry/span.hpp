#pragma once
/// \file span.hpp
/// Begin/end span recording on *simulated* time (util::SimNs) into a
/// bounded ring buffer. Spans are recorded complete (begin + end in one
/// call) by the orchestration layers — epoch loop, daemon tick, A-bit
/// walks, mover batches, per-shard engine steps — so the buffer never
/// holds a dangling "begin" and every export is balanced by construction.
///
/// The ring overwrites the *oldest* span on overflow (recent behavior is
/// what an operator debugs); every overwrite is counted and the facade
/// mirrors the count into the metrics registry, so trace truncation is
/// itself observable (the ISSUE's "overflow drops are themselves counted").

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::telemetry {

/// One completed span. `pid` groups spans into Chrome-trace processes
/// (one per bench run), `tid` into tracks within a run (epoch loop,
/// daemon, mover, one per engine shard).
struct Span {
  std::string name;
  util::SimNs begin_ns = 0;
  util::SimNs end_ns = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

class SpanTracer {
 public:
  explicit SpanTracer(std::size_t capacity);

  /// Record a completed span. Returns true when an older span was
  /// overwritten to make room.
  bool record(std::string_view name, util::SimNs begin_ns, util::SimNs end_ns,
              std::uint32_t pid, std::uint32_t tid);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t overwritten() const noexcept {
    return overwritten_;
  }

  /// Spans in recording order (oldest surviving first).
  [[nodiscard]] std::vector<Span> spans_in_order() const;

  /// Checkpoint hooks (util/ckpt.hpp).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< oldest element once the ring is full
  std::uint64_t overwritten_ = 0;
  std::vector<Span> ring_;
};

}  // namespace tmprof::telemetry
