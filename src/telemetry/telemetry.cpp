#include "telemetry/telemetry.hpp"

#include <fstream>
#include <ostream>

#include "telemetry/export.hpp"
#include "util/ckpt.hpp"
#include "util/log.hpp"

namespace tmprof::telemetry {

Telemetry::Telemetry(TelemetryConfig config)
    : config_(std::move(config)),
      tracer_(config_.span_capacity),
      spans_dropped_(registry_.counter("telemetry_spans_dropped_total")),
      exports_(registry_.counter("telemetry_exports_total")) {}

std::uint32_t Telemetry::begin_run(std::string label) {
  // Idempotent for a consecutively repeated label: a rejected resume
  // falls back to a cold start that re-enters the same run, and the
  // retry must not leave a duplicate process group behind — exports
  // must match a fresh run byte for byte.
  if (!run_labels_.empty() && run_labels_.back().second == label &&
      run_labels_.back().first == current_pid_) {
    return current_pid_;
  }
  current_pid_ = static_cast<std::uint32_t>(run_labels_.size()) + 1;
  run_labels_.emplace_back(current_pid_, std::move(label));
  return current_pid_;
}

void Telemetry::span(std::string_view name, util::SimNs begin_ns,
                     util::SimNs end_ns, std::uint32_t tid) {
  if (tracer_.record(name, begin_ns, end_ns, current_pid_, tid)) {
    spans_dropped_.inc();
  }
}

void Telemetry::maybe_export(std::uint32_t completed_epochs) {
  if (config_.export_every == 0) return;
  if (completed_epochs % config_.export_every != 0) return;
  export_files();
}

void Telemetry::export_final() { export_files(); }

void Telemetry::export_files() {
  // The export counter observes itself being exported: increment first so
  // the written value counts this export too.
  exports_.inc();
  if (!config_.metrics_out.empty()) {
    std::ofstream os(config_.metrics_out, std::ios::trunc);
    if (!os) {
      TMPROF_LOG_WARN << "telemetry: cannot write metrics to '"
                      << config_.metrics_out << "'";
    } else {
      write_prometheus(os);
    }
  }
  if (!config_.trace_out.empty()) {
    std::ofstream os(config_.trace_out, std::ios::trunc);
    if (!os) {
      TMPROF_LOG_WARN << "telemetry: cannot write trace to '"
                      << config_.trace_out << "'";
    } else {
      write_chrome(os);
    }
  }
}

void Telemetry::write_chrome(std::ostream& os) const {
  write_chrome_trace(os, tracer_, run_labels_);
}

void Telemetry::write_prometheus(std::ostream& os) const {
  telemetry::write_prometheus(os, registry_);
}

void Telemetry::save_state(util::ckpt::Writer& w) const {
  registry_.save_state(w);
  tracer_.save_state(w);
  w.put_u64(run_labels_.size());
  for (const auto& [pid, label] : run_labels_) {
    w.put_u32(pid);
    w.put_str(label);
  }
  w.put_u32(current_pid_);
}

void Telemetry::load_state(util::ckpt::Reader& r) {
  registry_.load_state(r);
  tracer_.load_state(r);
  run_labels_.clear();
  const std::uint64_t n_labels = r.get_u64();
  run_labels_.reserve(n_labels);
  for (std::uint64_t i = 0; i < n_labels; ++i) {
    const std::uint32_t pid = r.get_u32();
    run_labels_.emplace_back(pid, r.get_str());
  }
  current_pid_ = r.get_u32();
}

}  // namespace tmprof::telemetry
