#pragma once
/// \file export.hpp
/// Telemetry exporters (docs/OBSERVABILITY.md):
///  * Chrome trace-event JSON — loadable in Perfetto / chrome://tracing.
///    Spans are emitted as balanced B/E duration-event pairs, grouped by
///    (pid, tid) and properly nested, plus process_name metadata for each
///    registered run label.
///  * Prometheus text exposition (version 0.0.4) — counters, gauges and
///    histograms with cumulative `le` buckets, `_sum` and `_count`.
///
/// Both writers iterate sorted containers and format integers / fixed-
/// precision decimals only, so for a given telemetry state the exported
/// byte streams are identical across platforms, thread counts and resumes.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace tmprof::telemetry {

/// Write `{"traceEvents": [...]}`. `run_labels` maps a Chrome pid to a
/// human-readable process name (one per bench run).
void write_chrome_trace(
    std::ostream& os, const SpanTracer& tracer,
    const std::vector<std::pair<std::uint32_t, std::string>>& run_labels);

/// Write every metric in text exposition format with the given name
/// prefix (default "tmprof_").
void write_prometheus(std::ostream& os, const MetricsRegistry& registry,
                      const std::string& prefix = "tmprof_");

}  // namespace tmprof::telemetry
