#include "telemetry/span.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::telemetry {

SpanTracer::SpanTracer(std::size_t capacity) : capacity_(capacity) {
  TMPROF_EXPECTS(capacity > 0);
  ring_.reserve(capacity < 4096 ? capacity : 4096);
}

bool SpanTracer::record(std::string_view name, util::SimNs begin_ns,
                        util::SimNs end_ns, std::uint32_t pid,
                        std::uint32_t tid) {
  TMPROF_EXPECTS(end_ns >= begin_ns);
  Span span{std::string(name), begin_ns, end_ns, pid, tid};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return false;
  }
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % capacity_;
  ++overwritten_;
  return true;
}

std::vector<Span> SpanTracer::spans_in_order() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void SpanTracer::save_state(util::ckpt::Writer& w) const {
  w.put_u64(capacity_);
  w.put_u64(overwritten_);
  const std::vector<Span> ordered = spans_in_order();
  w.put_u64(ordered.size());
  for (const Span& s : ordered) {
    w.put_str(s.name);
    w.put_u64(s.begin_ns);
    w.put_u64(s.end_ns);
    w.put_u32(s.pid);
    w.put_u32(s.tid);
  }
}

void SpanTracer::load_state(util::ckpt::Reader& r) {
  const std::uint64_t capacity = r.get_u64();
  if (capacity != capacity_) {
    throw util::ckpt::CkptError("telemetry", "span ring capacity mismatch");
  }
  overwritten_ = r.get_u64();
  const std::uint64_t count = r.get_u64();
  if (count > capacity_) {
    throw util::ckpt::CkptError("telemetry", "span ring over capacity");
  }
  ring_.clear();
  head_ = 0;  // spans were saved oldest-first, so a fresh ring is in order
  ring_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Span s;
    s.name = r.get_str();
    s.begin_ns = r.get_u64();
    s.end_ns = r.get_u64();
    s.pid = r.get_u32();
    s.tid = r.get_u32();
    ring_.push_back(std::move(s));
  }
}

}  // namespace tmprof::telemetry
