#include "monitors/ibs.hpp"

#include "util/ckpt_io.hpp"

#include "util/assert.hpp"

namespace tmprof::monitors {

IbsMonitor::IbsMonitor(const IbsConfig& config, std::uint32_t cores,
                       std::uint64_t seed)
    : config_(config),
      rng_(seed),
      seed_(seed),
      countdown_(cores),
      tag_armed_(cores, 0) {
  TMPROF_EXPECTS(config.sample_period >= 16);
  TMPROF_EXPECTS(config.buffer_capacity >= 1);
  TMPROF_EXPECTS(cores >= 1);
  buffer_.reserve(config.buffer_capacity);
  for (std::uint32_t c = 0; c < cores; ++c) reload(c);
}

void IbsMonitor::enable_sharded() {
  if (sharded_) return;
  sharded_ = true;
  lanes_.resize(countdown_.size());
  for (std::uint32_t c = 0; c < lanes_.size(); ++c) {
    // Independent, reproducible per-core tag-randomization streams.
    std::uint64_t mix = seed_ ^ (0x9e3779b97f4a7c15ULL * (c + 1));
    lanes_[c].rng = util::Rng(util::splitmix64(mix));
    lanes_[c].buffer.reserve(config_.buffer_capacity);
    reload(c);  // re-arm the countdown from the core's own stream
  }
}

void IbsMonitor::enable_streaming(
    std::vector<util::SpscRing<StreamRecord>*> rings, StreamSpillFn spill) {
  enable_sharded();
  TMPROF_EXPECTS(rings.size() == lanes_.size());
  for (std::uint32_t c = 0; c < lanes_.size(); ++c) {
    TMPROF_EXPECTS(rings[c] != nullptr);
    lanes_[c].ring = rings[c];
  }
  stream_spill_ = std::move(spill);
  streaming_ = true;
}

void IbsMonitor::stream_epoch_reset() {
  for (CoreLane& lane : lanes_) lane.stream_seq = 0;
}

void IbsMonitor::reload(std::uint32_t core) {
  std::int64_t period = static_cast<std::int64_t>(config_.sample_period);
  if (config_.randomize) {
    // Randomize the low 1/16 of the period, like IbsOpCurCnt randomization.
    util::Rng& rng = sharded_ ? lanes_[core].rng : rng_;
    const std::uint64_t jitter_span = config_.sample_period / 16 + 1;
    period += static_cast<std::int64_t>(rng.below(jitter_span)) -
              static_cast<std::int64_t>(jitter_span / 2);
    if (period < 1) period = 1;
  }
  countdown_[core] = period;
}

void IbsMonitor::on_retire(std::uint32_t core, std::uint64_t uops,
                           util::SimNs now) {
  (void)now;
  TMPROF_ASSERT(core < countdown_.size());
  countdown_[core] -= static_cast<std::int64_t>(uops);
  if (countdown_[core] > 0) return;
  reload(core);
  std::uint64_t& tags_lost = sharded_ ? lanes_[core].tags_lost : tags_lost_;
  if (tag_armed_[core]) {
    // Previous tag never matched a memory op before the next fired: lost.
    ++tags_lost;
  }
  // The tagged uop is one of the `uops` just retired. Only one of them is
  // the memory micro-op the upcoming on_mem_op() call describes, so arm the
  // tag with probability 1/uops; otherwise the tag hit a non-memory uop.
  util::Rng& rng = sharded_ ? lanes_[core].rng : rng_;
  if (uops <= 1 || rng.below(uops) == 0) {
    tag_armed_[core] = 1;
  } else {
    ++tags_lost;
  }
}

void IbsMonitor::on_mem_op(const MemOpEvent& event) {
  TMPROF_ASSERT(event.core < tag_armed_.size());
  if (!tag_armed_[event.core]) return;
  tag_armed_[event.core] = 0;
  TraceSample sample;
  sample.time = event.time;
  sample.core = event.core;
  sample.pid = event.pid;
  sample.ip = event.ip;
  sample.vaddr = event.vaddr;
  sample.paddr = event.paddr;
  sample.is_store = event.is_store;
  sample.source = event.source;
  sample.tlb_miss = event.tlb == mem::TlbHit::Miss;
  if (sharded_) {
    CoreLane& lane = lanes_[event.core];
    ++lane.samples;
    if (streaming_) {
      // Publish immediately; a full ring spills rather than drops, so the
      // record set per lane is identical however the consumer is scheduled.
      const StreamRecord rec = encode_trace_record(
          static_cast<std::uint16_t>(event.core), lane.stream_seq++, sample);
      if (!lane.ring->try_push(rec)) lane.spill.push_back(rec);
      // `since_drain` stands in for buffer.size() so the PMI/overhead model
      // charges exactly what the barrier path charges.
      ++lane.since_drain;
      if (lane.since_drain % config_.buffer_capacity == 0) ++lane.interrupts;
      return;
    }
    lane.buffer.push_back(sample);
    // The PMI fires per buffer threshold; the handler cost is charged, but
    // the records stay put until the epoch barrier drains them (the driver
    // store is not shard-safe).
    if (lane.buffer.size() % config_.buffer_capacity == 0) ++lane.interrupts;
    return;
  }
  buffer_.push_back(sample);
  ++samples_taken_;
  if (buffer_.size() >= config_.buffer_capacity) {
    ++interrupts_;
    drain();
  }
}

void IbsMonitor::drain() {
  if (streaming_) {
    // Records in the rings belong to the driver's pump; here we only flush
    // what overflowed. Ascending lane order, though order is immaterial:
    // every streaming consumer folds commutatively or keys by (lane, seq).
    for (CoreLane& lane : lanes_) {
      if (!lane.spill.empty()) {
        if (stream_spill_) {
          stream_spill_(std::span<const StreamRecord>(lane.spill));
        }
        lane.spill.clear();
      }
      lane.since_drain = 0;
    }
    return;
  }
  if (sharded_) {
    for (CoreLane& lane : lanes_) {
      if (lane.buffer.empty()) continue;
      if (drain_) drain_(std::span<const TraceSample>(lane.buffer));
      lane.buffer.clear();
    }
    return;
  }
  if (buffer_.empty()) return;
  if (drain_) drain_(std::span<const TraceSample>(buffer_));
  buffer_.clear();
}

std::uint64_t IbsMonitor::samples_taken() const noexcept {
  std::uint64_t total = samples_taken_;
  for (const CoreLane& lane : lanes_) total += lane.samples;
  return total;
}

std::uint64_t IbsMonitor::tags_lost() const noexcept {
  std::uint64_t total = tags_lost_;
  for (const CoreLane& lane : lanes_) total += lane.tags_lost;
  return total;
}

std::uint64_t IbsMonitor::interrupts() const noexcept {
  std::uint64_t total = interrupts_;
  for (const CoreLane& lane : lanes_) total += lane.interrupts;
  return total;
}

util::SimNs IbsMonitor::overhead_ns() const noexcept {
  return samples_taken() * config_.cost_per_record_ns +
         interrupts() * config_.cost_per_interrupt_ns;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void IbsMonitor::save_state(util::ckpt::Writer& w) const {
  util::ckpt::save_rng(w, rng_);
  w.put_u32(static_cast<std::uint32_t>(countdown_.size()));
  for (const std::int64_t c : countdown_) w.put_i64(c);
  for (const std::uint8_t armed : tag_armed_) w.put_u8(armed);
  w.put_u64(buffer_.size());
  for (const TraceSample& s : buffer_) save_sample(w, s);
  w.put_u64(samples_taken_);
  w.put_u64(tags_lost_);
  w.put_u64(interrupts_);
  w.put_bool(sharded_);
  w.put_u32(static_cast<std::uint32_t>(lanes_.size()));
  for (const CoreLane& lane : lanes_) {
    util::ckpt::save_rng(w, lane.rng);
    w.put_u64(lane.buffer.size());
    for (const TraceSample& s : lane.buffer) save_sample(w, s);
    w.put_u64(lane.samples);
    w.put_u64(lane.tags_lost);
    w.put_u64(lane.interrupts);
  }
  w.put_bool(streaming_);
  if (streaming_) {
    // Checkpoints land at sealed barriers, where spill/seq/since_drain are
    // all zero — but serialize them anyway so the format stays honest if a
    // mid-epoch snapshot ever appears.
    for (const CoreLane& lane : lanes_) {
      w.put_u64(lane.spill.size());
      for (const StreamRecord& rec : lane.spill) save_stream_record(w, rec);
      w.put_u32(lane.stream_seq);
      w.put_u32(lane.since_drain);
    }
  }
}

void IbsMonitor::load_state(util::ckpt::Reader& r) {
  util::ckpt::load_rng(r, rng_);
  const std::uint32_t cores = r.get_u32();
  if (cores != countdown_.size()) {
    throw util::ckpt::CkptError("ibs", "core count mismatch");
  }
  for (std::int64_t& c : countdown_) c = r.get_i64();
  for (std::uint8_t& armed : tag_armed_) armed = r.get_u8();
  buffer_.resize(r.get_u64());
  for (TraceSample& s : buffer_) s = load_sample(r);
  samples_taken_ = r.get_u64();
  tags_lost_ = r.get_u64();
  interrupts_ = r.get_u64();
  const bool sharded = r.get_bool();
  if (sharded && !sharded_) enable_sharded();
  if (sharded != sharded_) {
    throw util::ckpt::CkptError("ibs", "sharded-mode mismatch");
  }
  const std::uint32_t lanes = r.get_u32();
  if (lanes != lanes_.size()) {
    throw util::ckpt::CkptError("ibs", "lane count mismatch");
  }
  for (CoreLane& lane : lanes_) {
    util::ckpt::load_rng(r, lane.rng);
    lane.buffer.resize(r.get_u64());
    for (TraceSample& s : lane.buffer) s = load_sample(r);
    lane.samples = r.get_u64();
    lane.tags_lost = r.get_u64();
    lane.interrupts = r.get_u64();
  }
  const bool streaming = r.get_bool();
  if (streaming != streaming_) {
    // Rings are wired by the driver before restore; a checkpoint from the
    // other transport mode cannot be resumed in place.
    throw util::ckpt::CkptError("ibs", "streaming-mode mismatch");
  }
  if (streaming_) {
    for (CoreLane& lane : lanes_) {
      lane.spill.resize(r.get_u64());
      for (StreamRecord& rec : lane.spill) rec = load_stream_record(r);
      lane.stream_seq = r.get_u32();
      lane.since_drain = r.get_u32();
    }
  }
}

}  // namespace tmprof::monitors
