#include "monitors/ibs.hpp"

#include "util/assert.hpp"

namespace tmprof::monitors {

IbsMonitor::IbsMonitor(const IbsConfig& config, std::uint32_t cores,
                       std::uint64_t seed)
    : config_(config), rng_(seed), countdown_(cores), tag_armed_(cores, false) {
  TMPROF_EXPECTS(config.sample_period >= 16);
  TMPROF_EXPECTS(config.buffer_capacity >= 1);
  TMPROF_EXPECTS(cores >= 1);
  buffer_.reserve(config.buffer_capacity);
  for (std::uint32_t c = 0; c < cores; ++c) reload(c);
}

void IbsMonitor::reload(std::uint32_t core) {
  std::int64_t period = static_cast<std::int64_t>(config_.sample_period);
  if (config_.randomize) {
    // Randomize the low 1/16 of the period, like IbsOpCurCnt randomization.
    const std::uint64_t jitter_span = config_.sample_period / 16 + 1;
    period += static_cast<std::int64_t>(rng_.below(jitter_span)) -
              static_cast<std::int64_t>(jitter_span / 2);
    if (period < 1) period = 1;
  }
  countdown_[core] = period;
}

void IbsMonitor::on_retire(std::uint32_t core, std::uint64_t uops,
                           util::SimNs now) {
  (void)now;
  TMPROF_ASSERT(core < countdown_.size());
  countdown_[core] -= static_cast<std::int64_t>(uops);
  if (countdown_[core] > 0) return;
  reload(core);
  if (tag_armed_[core]) {
    // Previous tag never matched a memory op before the next fired: lost.
    ++tags_lost_;
  }
  // The tagged uop is one of the `uops` just retired. Only one of them is
  // the memory micro-op the upcoming on_mem_op() call describes, so arm the
  // tag with probability 1/uops; otherwise the tag hit a non-memory uop.
  if (uops <= 1 || rng_.below(uops) == 0) {
    tag_armed_[core] = true;
  } else {
    ++tags_lost_;
  }
}

void IbsMonitor::on_mem_op(const MemOpEvent& event) {
  TMPROF_ASSERT(event.core < tag_armed_.size());
  if (!tag_armed_[event.core]) return;
  tag_armed_[event.core] = false;
  TraceSample sample;
  sample.time = event.time;
  sample.core = event.core;
  sample.pid = event.pid;
  sample.ip = event.ip;
  sample.vaddr = event.vaddr;
  sample.paddr = event.paddr;
  sample.is_store = event.is_store;
  sample.source = event.source;
  sample.tlb_miss = event.tlb == mem::TlbHit::Miss;
  buffer_.push_back(sample);
  ++samples_taken_;
  if (buffer_.size() >= config_.buffer_capacity) {
    ++interrupts_;
    drain();
  }
}

void IbsMonitor::drain() {
  if (buffer_.empty()) return;
  if (drain_) drain_(std::span<const TraceSample>(buffer_));
  buffer_.clear();
}

util::SimNs IbsMonitor::overhead_ns() const noexcept {
  return samples_taken_ * config_.cost_per_record_ns +
         interrupts_ * config_.cost_per_interrupt_ns;
}

}  // namespace tmprof::monitors
