#pragma once
/// \file abit.hpp
/// PTE A-bit scanner — the software profiling mechanism of Section III-B2.
/// Walks a process's page table (`mm_walk` analog), and for every present
/// leaf PTE runs the registered gather callback, which test-and-clears the
/// accessed bit (TestClearPageReferenced).
///
/// Following the paper's third optimization, clearing does NOT issue a TLB
/// shootdown by default: a still-resident TLB entry keeps translating, so
/// the next A-bit set is delayed until that entry is naturally evicted.
/// A configuration option restores the shootdown for software that needs
/// precise A bits, at the cost of one IPI burst per scanned page.

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/addr.hpp"
#include "mem/page_table.hpp"
#include "util/time.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::monitors {

/// One page observed accessed since the previous scan.
struct AbitSample {
  mem::VirtAddr page_va = 0;
  mem::Pfn pfn = 0;            ///< head frame (vm_normal_page analog)
  mem::PageSize size = mem::PageSize::k4K;
};

struct AbitConfig {
  /// Issue a shootdown for every PTE whose A bit is cleared (off by default
  /// per the paper's optimization and ptep_clear_flush_young() rationale).
  bool shootdown_on_clear = false;
  /// Cost model: visiting one PTE during the table walk.
  util::SimNs cost_per_pte_ns = 25;
  /// Cost model: one system-wide shootdown IPI burst.
  util::SimNs cost_per_shootdown_ns = 4000;
};

/// Result summary of one scan over one process.
struct AbitScanResult {
  std::uint64_t ptes_visited = 0;
  std::uint64_t pages_accessed = 0;   ///< A bits found set (and cleared)
  std::uint64_t shootdowns = 0;
  util::SimNs cost_ns = 0;
  /// The walk gave up mid-scan (injected fault): remaining processes were
  /// not scanned this epoch, so their A bits stay set for the next pass.
  bool aborted = false;
};

/// The A-bit driver.
class AbitScanner {
 public:
  /// Receives every page found accessed during a scan.
  using SampleSink = std::function<void(const AbitSample&)>;
  /// Invalidates one page's translations system-wide; returns IPIs issued.
  /// Wired to the System's TLBs by the driver.
  using ShootdownFn =
      std::function<std::uint64_t(mem::Pid, mem::VirtAddr, mem::PageSize)>;

  explicit AbitScanner(const AbitConfig& config);

  void set_shootdown(ShootdownFn fn) { shootdown_ = std::move(fn); }

  /// Walk `table` once; report accessed pages to `sink`, clearing A bits.
  AbitScanResult scan(mem::Pid pid, mem::PageTable& table,
                      const SampleSink& sink);

  /// Templated scan: `sink` is a plain callable invoked directly for every
  /// accessed page, riding PageTable::walk_fn so the whole per-leaf visit
  /// inlines (no std::function dispatch on the epoch hot path).
  template <typename Sink>
  AbitScanResult scan_fn(mem::Pid pid, mem::PageTable& table, Sink&& sink) {
    AbitScanResult result;
    table.walk_fn(
        [&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte& pte) {
          ++result.ptes_visited;
          // gather_a_history(): check, save and clear the A bit.
          if (pte.test_clear_accessed()) {
            ++result.pages_accessed;
            sink(AbitSample{page_va, pte.pfn(), size});
            if (config_.shootdown_on_clear && shootdown_) {
              result.shootdowns += shootdown_(pid, page_va, size);
            }
          }
        });
    result.cost_ns = result.ptes_visited * config_.cost_per_pte_ns +
                     result.shootdowns * config_.cost_per_shootdown_ns;
    total_ptes_visited_ += result.ptes_visited;
    total_pages_accessed_ += result.pages_accessed;
    overhead_ns_ += result.cost_ns;
    return result;
  }

  [[nodiscard]] const AbitConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t total_ptes_visited() const noexcept {
    return total_ptes_visited_;
  }
  [[nodiscard]] std::uint64_t total_pages_accessed() const noexcept {
    return total_pages_accessed_;
  }
  [[nodiscard]] util::SimNs overhead_ns() const noexcept {
    return overhead_ns_;
  }

  /// Checkpoint hooks (util/ckpt.hpp).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  AbitConfig config_;
  ShootdownFn shootdown_;
  std::uint64_t total_ptes_visited_ = 0;
  std::uint64_t total_pages_accessed_ = 0;
  util::SimNs overhead_ns_ = 0;
};

}  // namespace tmprof::monitors
