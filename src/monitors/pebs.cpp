#include "monitors/pebs.hpp"

#include "util/ckpt.hpp"

#include "util/assert.hpp"

namespace tmprof::monitors {

PebsMonitor::PebsMonitor(const PebsConfig& config, std::uint32_t cores)
    : config_(config), counter_(cores, 0) {
  TMPROF_EXPECTS(config.sample_after >= 1);
  TMPROF_EXPECTS(config.buffer_capacity >= 1);
  TMPROF_EXPECTS(cores >= 1);
  buffer_.reserve(config.buffer_capacity);
}

void PebsMonitor::enable_sharded() {
  if (sharded_) return;
  sharded_ = true;
  lanes_.resize(counter_.size());
  for (CoreLane& lane : lanes_) lane.buffer.reserve(config_.buffer_capacity);
}

void PebsMonitor::enable_streaming(
    std::vector<util::SpscRing<StreamRecord>*> rings, StreamSpillFn spill) {
  enable_sharded();
  TMPROF_EXPECTS(rings.size() == lanes_.size());
  for (std::uint32_t c = 0; c < lanes_.size(); ++c) {
    TMPROF_EXPECTS(rings[c] != nullptr);
    lanes_[c].ring = rings[c];
  }
  stream_spill_ = std::move(spill);
  streaming_ = true;
}

void PebsMonitor::stream_epoch_reset() {
  for (CoreLane& lane : lanes_) lane.stream_seq = 0;
}

bool PebsMonitor::qualifies(const MemOpEvent& event) const noexcept {
  switch (config_.event) {
    case PebsEvent::LlcMiss:
      return mem::is_memory(event.source);
    case PebsEvent::LlcAccess:
      return event.source == mem::DataSource::LLC ||
             mem::is_memory(event.source);
    case PebsEvent::TlbWalk:
      return event.tlb == mem::TlbHit::Miss;
    case PebsEvent::AllLoads:
      return !event.is_store;
  }
  return false;
}

void PebsMonitor::on_mem_op(const MemOpEvent& event) {
  if (!qualifies(event)) return;
  TMPROF_ASSERT(event.core < counter_.size());
  if (sharded_) {
    ++lanes_[event.core].events;
  } else {
    ++events_seen_;
  }
  if (++counter_[event.core] < config_.sample_after) return;
  counter_[event.core] = 0;
  TraceSample sample;
  sample.time = event.time;
  sample.core = event.core;
  sample.pid = event.pid;
  sample.ip = event.ip;
  sample.vaddr = event.vaddr;
  sample.paddr = event.paddr;
  sample.is_store = event.is_store;
  sample.source = event.source;
  sample.tlb_miss = event.tlb == mem::TlbHit::Miss;
  if (sharded_) {
    CoreLane& lane = lanes_[event.core];
    ++lane.samples;
    if (streaming_) {
      const StreamRecord rec = encode_trace_record(
          static_cast<std::uint16_t>(event.core), lane.stream_seq++, sample);
      if (!lane.ring->try_push(rec)) lane.spill.push_back(rec);
      ++lane.since_drain;
      if (lane.since_drain % config_.buffer_capacity == 0) ++lane.interrupts;
      return;
    }
    lane.buffer.push_back(sample);
    if (lane.buffer.size() % config_.buffer_capacity == 0) ++lane.interrupts;
    return;
  }
  buffer_.push_back(sample);
  ++samples_taken_;
  if (buffer_.size() >= config_.buffer_capacity) {
    ++interrupts_;
    drain();
  }
}

void PebsMonitor::drain() {
  if (streaming_) {
    for (CoreLane& lane : lanes_) {
      if (!lane.spill.empty()) {
        if (stream_spill_) {
          stream_spill_(std::span<const StreamRecord>(lane.spill));
        }
        lane.spill.clear();
      }
      lane.since_drain = 0;
    }
    return;
  }
  if (sharded_) {
    for (CoreLane& lane : lanes_) {
      if (lane.buffer.empty()) continue;
      if (drain_) drain_(std::span<const TraceSample>(lane.buffer));
      lane.buffer.clear();
    }
    return;
  }
  if (buffer_.empty()) return;
  if (drain_) drain_(std::span<const TraceSample>(buffer_));
  buffer_.clear();
}

std::uint64_t PebsMonitor::samples_taken() const noexcept {
  std::uint64_t total = samples_taken_;
  for (const CoreLane& lane : lanes_) total += lane.samples;
  return total;
}

std::uint64_t PebsMonitor::events_seen() const noexcept {
  std::uint64_t total = events_seen_;
  for (const CoreLane& lane : lanes_) total += lane.events;
  return total;
}

std::uint64_t PebsMonitor::interrupts() const noexcept {
  std::uint64_t total = interrupts_;
  for (const CoreLane& lane : lanes_) total += lane.interrupts;
  return total;
}

util::SimNs PebsMonitor::overhead_ns() const noexcept {
  return samples_taken() * config_.cost_per_record_ns +
         interrupts() * config_.cost_per_interrupt_ns;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void PebsMonitor::save_state(util::ckpt::Writer& w) const {
  w.put_u32(static_cast<std::uint32_t>(counter_.size()));
  for (const std::uint64_t c : counter_) w.put_u64(c);
  w.put_u64(buffer_.size());
  for (const TraceSample& s : buffer_) save_sample(w, s);
  w.put_u64(samples_taken_);
  w.put_u64(events_seen_);
  w.put_u64(interrupts_);
  w.put_bool(sharded_);
  w.put_u32(static_cast<std::uint32_t>(lanes_.size()));
  for (const CoreLane& lane : lanes_) {
    w.put_u64(lane.buffer.size());
    for (const TraceSample& s : lane.buffer) save_sample(w, s);
    w.put_u64(lane.samples);
    w.put_u64(lane.events);
    w.put_u64(lane.interrupts);
  }
  w.put_bool(streaming_);
  if (streaming_) {
    for (const CoreLane& lane : lanes_) {
      w.put_u64(lane.spill.size());
      for (const StreamRecord& rec : lane.spill) save_stream_record(w, rec);
      w.put_u32(lane.stream_seq);
      w.put_u32(lane.since_drain);
    }
  }
}

void PebsMonitor::load_state(util::ckpt::Reader& r) {
  const std::uint32_t cores = r.get_u32();
  if (cores != counter_.size()) {
    throw util::ckpt::CkptError("pebs", "core count mismatch");
  }
  for (std::uint64_t& c : counter_) c = r.get_u64();
  buffer_.resize(r.get_u64());
  for (TraceSample& s : buffer_) s = load_sample(r);
  samples_taken_ = r.get_u64();
  events_seen_ = r.get_u64();
  interrupts_ = r.get_u64();
  const bool sharded = r.get_bool();
  if (sharded && !sharded_) enable_sharded();
  if (sharded != sharded_) {
    throw util::ckpt::CkptError("pebs", "sharded-mode mismatch");
  }
  const std::uint32_t lanes = r.get_u32();
  if (lanes != lanes_.size()) {
    throw util::ckpt::CkptError("pebs", "lane count mismatch");
  }
  for (CoreLane& lane : lanes_) {
    lane.buffer.resize(r.get_u64());
    for (TraceSample& s : lane.buffer) s = load_sample(r);
    lane.samples = r.get_u64();
    lane.events = r.get_u64();
    lane.interrupts = r.get_u64();
  }
  const bool streaming = r.get_bool();
  if (streaming != streaming_) {
    throw util::ckpt::CkptError("pebs", "streaming-mode mismatch");
  }
  if (streaming_) {
    for (CoreLane& lane : lanes_) {
      lane.spill.resize(r.get_u64());
      for (StreamRecord& rec : lane.spill) rec = load_stream_record(r);
      lane.stream_seq = r.get_u32();
      lane.since_drain = r.get_u32();
    }
  }
}

}  // namespace tmprof::monitors
