#pragma once
/// \file pebs.hpp
/// Intel Precise Event Based Sampling model. Unlike IBS (which tags the
/// retirement stream), PEBS arms on a chosen *event* — TMP uses LLC misses —
/// and the microcode assist writes a record for every Nth occurrence into a
/// designated memory buffer; crossing the buffer threshold raises a PMI.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mem/cache.hpp"
#include "monitors/event.hpp"
#include "util/ring.hpp"
#include "util/time.hpp"

namespace tmprof::monitors {

/// Which event arms the PEBS counter.
enum class PebsEvent : std::uint8_t {
  LlcMiss,    ///< demand access left the LLC (TMP's choice)
  LlcAccess,  ///< any LLC access
  TlbWalk,    ///< hardware page walk performed
  AllLoads,   ///< every retired load
};

struct PebsConfig {
  PebsEvent event = PebsEvent::LlcMiss;
  /// Record one out of this many qualifying events ("sample-after value").
  std::uint64_t sample_after = 1024;
  std::uint32_t buffer_capacity = 4096;
  /// PEBS assist is cheaper per record than an interrupt-per-sample design;
  /// the PMI on buffer threshold is the expensive part.
  util::SimNs cost_per_record_ns = 200;
  util::SimNs cost_per_interrupt_ns = 4000;
};

/// System-wide PEBS monitor (per-core counters, shared buffer model).
class PebsMonitor final : public AccessObserver {
 public:
  using DrainFn = std::function<void(std::span<const TraceSample>)>;

  PebsMonitor(const PebsConfig& config, std::uint32_t cores);

  void set_drain(DrainFn drain) { drain_ = std::move(drain); }

  /// Switch to sharded operation: per-core sample buffers and statistics so
  /// each simulated core's callbacks may run on its own worker thread. PMIs
  /// are counted per core; the actual drain to the driver happens at the
  /// epoch barrier in ascending core order. Call before the first event.
  void enable_sharded();
  [[nodiscard]] bool sharded() const noexcept { return sharded_; }

  /// Streaming handoff, identical protocol to IbsMonitor::enable_streaming:
  /// per-core (core, seq)-tagged StreamRecords into caller-owned SPSC
  /// rings, with a counted lane-local spill on ring-full. Implies sharded.
  using StreamSpillFn = std::function<void(std::span<const StreamRecord>)>;
  void enable_streaming(std::vector<util::SpscRing<StreamRecord>*> rings,
                        StreamSpillFn spill);
  [[nodiscard]] bool streaming() const noexcept { return streaming_; }

  /// Restart per-core record sequence numbers (epoch seal).
  void stream_epoch_reset();

  void on_mem_op(const MemOpEvent& event) override;

  AccessObserver* shard_sink(std::uint32_t /*core*/) override {
    return sharded_ ? this : nullptr;
  }
  void merge_shards() override { drain(); }

  /// In sharded mode, drains every core's buffer in ascending core order.
  void drain();

  [[nodiscard]] const PebsConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept;
  [[nodiscard]] std::uint64_t events_seen() const noexcept;
  [[nodiscard]] std::uint64_t interrupts() const noexcept;
  [[nodiscard]] util::SimNs overhead_ns() const noexcept;

  /// Checkpoint hooks (util/ckpt.hpp).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  struct CoreLane {
    std::vector<TraceSample> buffer;
    std::uint64_t samples = 0;
    std::uint64_t events = 0;
    std::uint64_t interrupts = 0;
    // Streaming mode only:
    util::SpscRing<StreamRecord>* ring = nullptr;  ///< not owned
    std::vector<StreamRecord> spill;  ///< ring-full overflow, never dropped
    std::uint32_t stream_seq = 0;
    std::uint32_t since_drain = 0;
  };

  [[nodiscard]] bool qualifies(const MemOpEvent& event) const noexcept;

  PebsConfig config_;
  DrainFn drain_;
  std::vector<std::uint64_t> counter_;  ///< per-core qualifying-event count
  std::vector<TraceSample> buffer_;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t events_seen_ = 0;
  std::uint64_t interrupts_ = 0;
  bool sharded_ = false;
  bool streaming_ = false;
  StreamSpillFn stream_spill_;
  std::vector<CoreLane> lanes_;         ///< populated in sharded mode
};

}  // namespace tmprof::monitors
