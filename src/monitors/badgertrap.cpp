#include "monitors/badgertrap.hpp"

#include <algorithm>

#include "util/ckpt.hpp"

#include "util/assert.hpp"

namespace tmprof::monitors {

BadgerTrap::BadgerTrap(const BadgerTrapConfig& config) : config_(config) {}

void BadgerTrap::poison(mem::Pid pid, mem::PageTable& table, mem::Tlb& tlb,
                        mem::VirtAddr page_va, bool hot) {
  mem::PteRef ref = table.resolve(page_va);
  TMPROF_EXPECTS(ref && ref.page_va == page_va);
  ref.pte->set_poisoned(true);
  // Flush so the next access takes a hardware walk and faults.
  tlb.invalidate_page(pid, page_va, ref.size);
  PageState& state = pages_[PageKey{pid, page_va}];
  state.hot = hot;
  state.armed = true;
}

void BadgerTrap::unpoison(mem::Pid pid, mem::PageTable& table,
                          mem::VirtAddr page_va) {
  mem::PteRef ref = table.resolve(page_va);
  TMPROF_EXPECTS(ref && ref.page_va == page_va);
  ref.pte->set_poisoned(false);
  pages_.erase(PageKey{pid, page_va});
}

util::SimNs BadgerTrap::handle_fault(mem::Pid pid, mem::PageTable& table,
                                     mem::Tlb& tlb, mem::VirtAddr vaddr,
                                     bool is_store) {
  // Re-walk ignoring the poison to get the real translation; this also sets
  // A/D exactly as the original access would have (the handler "unpoisons,
  // installs a valid translation, then repoisons" — net PTE effect is only
  // on A/D bits).
  mem::WalkResult walk =
      mem::PageTableWalker::walk(table, vaddr, is_store, /*honor_poison=*/false);
  TMPROF_ASSERT(walk.status == mem::WalkResult::Status::Ok);
  auto it = pages_.find(PageKey{pid, walk.page_va});
  TMPROF_ASSERT(it != pages_.end());
  it->second.faults += 1;
  total_faults_.fetch_add(1, std::memory_order_relaxed);
  if (config_.unpoison_on_fault) {
    // AutoNUMA semantics: the hint fault restores normal access; only the
    // next protect pass re-arms the page.
    walk.pte->set_poisoned(false);
    it->second.armed = false;
  }
  // Install the translation so execution proceeds without repeated faults
  // until the TLB entry is evicted (or refresh() flushes it again).
  tlb.fill(pid, walk.page_va, walk.size, walk.pte, walk.pte->dirty());
  util::SimNs latency = config_.handler_cost_ns + config_.fault_latency_ns;
  if (it->second.hot) latency += config_.hot_extra_latency_ns;
  injected_latency_ns_.fetch_add(latency, std::memory_order_relaxed);
  return latency;
}

void BadgerTrap::refresh(
    std::unordered_map<mem::Pid, mem::PageTable*>& tables, mem::Tlb& tlb) {
  for (auto& [key, state] : pages_) {
    const auto table_it = tables.find(key.pid);
    if (table_it == tables.end()) continue;
    mem::PteRef ref = table_it->second->resolve(key.page_va);
    if (!ref) continue;
    // Re-arm pages whose fault already cleared the poison.
    ref.pte->set_poisoned(true);
    state.armed = true;
    tlb.invalidate_page(key.pid, key.page_va, ref.size);
  }
}

bool BadgerTrap::is_poisoned(mem::Pid pid,
                             mem::VirtAddr page_va) const noexcept {
  const auto it = pages_.find(PageKey{pid, page_va});
  return it != pages_.end() && it->second.armed;
}

std::uint64_t BadgerTrap::fault_count(mem::Pid pid,
                                      mem::VirtAddr page_va) const {
  const auto it = pages_.find(PageKey{pid, page_va});
  return it == pages_.end() ? 0 : it->second.faults;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void BadgerTrap::save_state(util::ckpt::Writer& w) const {
  std::vector<std::pair<PageKey, PageState>> sorted(pages_.begin(),
                                                    pages_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.first.pid != b.first.pid) return a.first.pid < b.first.pid;
    return a.first.page_va < b.first.page_va;
  });
  w.put_u64(sorted.size());
  for (const auto& [key, state] : sorted) {
    w.put_u64(key.pid);
    w.put_u64(key.page_va);
    w.put_bool(state.hot);
    w.put_bool(state.armed);
    w.put_u64(state.faults);
  }
  w.put_u64(total_faults_.load(std::memory_order_relaxed));
  w.put_u64(injected_latency_ns_.load(std::memory_order_relaxed));
}

void BadgerTrap::load_state(util::ckpt::Reader& r) {
  pages_.clear();
  const std::uint64_t n = r.get_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    PageKey key;
    key.pid = static_cast<mem::Pid>(r.get_u64());
    key.page_va = r.get_u64();
    PageState state;
    state.hot = r.get_bool();
    state.armed = r.get_bool();
    state.faults = r.get_u64();
    pages_.emplace(key, state);
  }
  total_faults_.store(r.get_u64(), std::memory_order_relaxed);
  injected_latency_ns_.store(r.get_u64(), std::memory_order_relaxed);
}

}  // namespace tmprof::monitors
