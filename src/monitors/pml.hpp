#pragma once
/// \file pml.hpp
/// Intel Page-Modification Logging model (Section II-B). Every write that
/// transitions a D bit 0 → 1 also appends the 4 KiB-aligned physical address
/// of the write to an in-memory log; a full log notifies system software.
/// TMP focuses on A-bit (load-oriented) profiling, but PML is provided for
/// write-history policies (e.g., CLOCK-DWF-style placement).

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "monitors/event.hpp"

namespace tmprof::monitors {

struct PmlConfig {
  /// Real PML uses a 512-entry (one page) log.
  std::uint32_t log_capacity = 512;
};

class PmlMonitor final : public AccessObserver {
 public:
  using DrainFn = std::function<void(std::span<const mem::PhysAddr>)>;

  explicit PmlMonitor(const PmlConfig& config = {});

  void set_drain(DrainFn drain) { drain_ = std::move(drain); }

  void on_dirty_set(const MemOpEvent& event) override;

  void drain();

  [[nodiscard]] std::uint64_t entries_logged() const noexcept {
    return entries_logged_;
  }
  [[nodiscard]] std::uint64_t notifications() const noexcept {
    return notifications_;
  }

  /// Checkpoint hooks (util/ckpt.hpp).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  PmlConfig config_;
  DrainFn drain_;
  std::vector<mem::PhysAddr> log_;
  std::uint64_t entries_logged_ = 0;
  std::uint64_t notifications_ = 0;
};

}  // namespace tmprof::monitors
