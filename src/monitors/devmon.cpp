#include "monitors/devmon.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::monitors {

DevMonitor::DevMonitor(const DevMonConfig& config, const mem::PhysMemory& phys,
                       std::uint32_t cores)
    : config_(config), phys_(&phys) {
  TMPROF_EXPECTS(cores >= 1);
  TMPROF_EXPECTS(config.slots >= 1);
  TMPROF_EXPECTS(config.top_k >= 1);
  TMPROF_EXPECTS(config.counter_max >= 1);
  lanes_.resize(cores);
  devices_.resize(phys.tier_count());
  for (std::size_t t = 1; t < devices_.size(); ++t) {
    devices_[t].resize(config_.slots);
  }
  report_.reserve(config_.slots);
}

void DevMonitor::on_mem_op(const MemOpEvent& event) {
  if (!mem::is_memory(event.source)) return;
  const mem::Pfn pfn = mem::pfn_of(event.paddr);
  if (phys_->tier_of(pfn) == 0) return;  // fastest tier has no device counter
  CoreLane& lane = lanes_[event.core];
  ++lane.counts[pfn];
  ++lane.observed;
}

void DevMonitor::merge_lanes() {
  for (CoreLane& lane : lanes_) {
    observed_ += lane.observed;
    lane.observed = 0;
    if (lane.counts.empty()) continue;
    lane.counts.fold_sorted(
        [this](const std::uint64_t pfn, const std::uint32_t add) {
          // A frame's tier is static geometry, so the device a lane entry
          // belongs to is recoverable at the barrier.
          fold(devices_[phys_->tier_of(pfn)], pfn, add);
        });
    lane.counts.clear();
  }
}

void DevMonitor::fold(std::vector<CounterSlot>& device, mem::Pfn pfn,
                      std::uint32_t add) {
  CounterSlot* free_slot = nullptr;
  CounterSlot* min_slot = nullptr;
  for (CounterSlot& s : device) {
    if (s.used) {
      if (s.pfn == pfn) {
        s.count = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(std::uint64_t{s.count} + add,
                                    config_.counter_max));
        return;
      }
      if (min_slot == nullptr || s.count < min_slot->count) min_slot = &s;
    } else if (free_slot == nullptr) {
      free_slot = &s;
    }
  }
  if (free_slot != nullptr) {
    free_slot->used = true;
    free_slot->pfn = pfn;
    free_slot->count = std::min(add, config_.counter_max);
    return;
  }
  // Space-saving replacement: evict the coldest slot (ties → lowest index)
  // and let the newcomer inherit its count, bounding the undercount.
  ++evictions_;
  min_slot->pfn = pfn;
  min_slot->count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      std::uint64_t{min_slot->count} + add, config_.counter_max));
}

void DevMonitor::drain() {
  merge_lanes();
  ++drains_;
  for (std::size_t t = 1; t < devices_.size(); ++t) {
    std::vector<CounterSlot>& device = devices_[t];
    report_.clear();
    for (const CounterSlot& s : device) {
      if (s.used) {
        report_.push_back(DevMonReportEntry{
            s.pfn, s.count, static_cast<mem::TierId>(t)});
      }
    }
    if (!report_.empty()) {
      std::sort(report_.begin(), report_.end(),
                [](const DevMonReportEntry& a, const DevMonReportEntry& b) {
                  if (a.count != b.count) return a.count > b.count;
                  return a.pfn < b.pfn;
                });
      if (report_.size() > config_.top_k) report_.resize(config_.top_k);
      reported_ += report_.size();
      if (drain_) drain_(std::span<const DevMonReportEntry>(report_));
    }
    if (config_.decay) {
      for (CounterSlot& s : device) {
        if (!s.used) continue;
        s.count >>= 1;
        if (s.count == 0) s.used = false;
      }
    }
  }
}

std::uint64_t DevMonitor::observed() const noexcept {
  std::uint64_t total = observed_;
  for (const CoreLane& lane : lanes_) total += lane.observed;
  return total;
}

std::uint32_t DevMonitor::occupied(mem::TierId tier) const {
  if (tier >= devices_.size()) return 0;
  std::uint32_t n = 0;
  for (const CounterSlot& s : devices_[tier]) n += s.used ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Checkpoint hooks

void DevMonitor::save_state(util::ckpt::Writer& w) const {
  w.put_u32(config_.slots);
  w.put_u32(config_.top_k);
  w.put_u32(config_.counter_max);
  w.put_bool(config_.decay);
  w.put_u64(devices_.size());
  for (std::size_t t = 1; t < devices_.size(); ++t) {
    for (const CounterSlot& s : devices_[t]) {
      w.put_bool(s.used);
      w.put_u64(s.pfn);
      w.put_u32(s.count);
    }
  }
  w.put_u64(observed_);
  w.put_u64(evictions_);
  w.put_u64(reported_);
  w.put_u64(drains_);
  w.put_u64(lanes_.size());
  for (const CoreLane& lane : lanes_) {
    w.put_u64(lane.observed);
    w.put_u64(lane.counts.size());
    lane.counts.fold_sorted(
        [&w](const std::uint64_t pfn, const std::uint32_t count) {
          w.put_u64(pfn);
          w.put_u32(count);
        });
  }
}

void DevMonitor::load_state(util::ckpt::Reader& r) {
  const std::uint32_t slots = r.get_u32();
  const std::uint32_t top_k = r.get_u32();
  const std::uint32_t counter_max = r.get_u32();
  const bool decay = r.get_bool();
  if (slots != config_.slots || top_k != config_.top_k ||
      counter_max != config_.counter_max || decay != config_.decay) {
    throw util::ckpt::CkptError("devmon", "device-monitor config mismatch");
  }
  if (r.get_u64() != devices_.size()) {
    throw util::ckpt::CkptError("devmon", "tier-chain length mismatch");
  }
  for (std::size_t t = 1; t < devices_.size(); ++t) {
    for (CounterSlot& s : devices_[t]) {
      s.used = r.get_bool();
      s.pfn = r.get_u64();
      s.count = r.get_u32();
    }
  }
  observed_ = r.get_u64();
  evictions_ = r.get_u64();
  reported_ = r.get_u64();
  drains_ = r.get_u64();
  if (r.get_u64() != lanes_.size()) {
    throw util::ckpt::CkptError("devmon", "core-lane count mismatch");
  }
  for (CoreLane& lane : lanes_) {
    lane.observed = r.get_u64();
    lane.counts.clear();
    const std::uint64_t n = r.get_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t pfn = r.get_u64();
      lane.counts[pfn] = r.get_u32();
    }
  }
}

}  // namespace tmprof::monitors
