#pragma once
/// \file ibs.hpp
/// AMD Instruction Based Sampling model (op sampling). Hardware tags every
/// Nth retired micro-op; if the tagged uop is a memory op, a record with the
/// load/store addresses and data source is produced. Tags landing on
/// non-memory uops are lost samples, exactly as on real IBS.
///
/// Sampling-rate naming matches the paper: the *default* rate is one tag
/// per 262,144 uops; "4x" and "8x" divide that period by 4 and 8.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "monitors/event.hpp"
#include "util/ring.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tmprof::monitors {

/// Tuning knobs of the IBS driver (Section III-B1).
struct IbsConfig {
  /// Tag one micro-op out of this many. Paper default: 262144.
  std::uint64_t sample_period = 262144;
  /// Randomize the low bits of each countdown reload (hardware does this to
  /// avoid lock-step with loops).
  bool randomize = true;
  /// Ring-buffer capacity in records; a full buffer raises an interrupt.
  std::uint32_t buffer_capacity = 4096;
  /// Cost model: handler work per drained record and per interrupt. Defaults
  /// chosen so the paper's <5% overhead at 4x reproduces.
  util::SimNs cost_per_record_ns = 400;
  util::SimNs cost_per_interrupt_ns = 4000;

  [[nodiscard]] static IbsConfig with_period(std::uint64_t period) {
    IbsConfig cfg;
    cfg.sample_period = period;
    return cfg;
  }
  [[nodiscard]] static IbsConfig paper_default() { return with_period(262144); }
  [[nodiscard]] static IbsConfig paper_4x() { return with_period(262144 / 4); }
  [[nodiscard]] static IbsConfig paper_8x() { return with_period(262144 / 8); }
};

/// Per-system IBS monitor (one tagging counter per core).
class IbsMonitor final : public AccessObserver {
 public:
  using DrainFn = std::function<void(std::span<const TraceSample>)>;

  IbsMonitor(const IbsConfig& config, std::uint32_t cores,
             std::uint64_t seed = 0x1b5);

  /// Install the buffer-full interrupt handler (the TMP driver's drain).
  void set_drain(DrainFn drain) { drain_ = std::move(drain); }

  /// Switch to sharded operation: per-core tag RNG streams, sample buffers
  /// and statistics, so each simulated core's callbacks may run on its own
  /// worker thread. Buffer-threshold interrupts are still *counted* per
  /// core (the overhead model is unchanged) but the actual drain to the
  /// driver is deferred to the epoch barrier, where buffers empty in
  /// ascending core order. Call before the first event is delivered.
  void enable_sharded();
  [[nodiscard]] bool sharded() const noexcept { return sharded_; }

  /// Streaming handoff (docs/STREAMING.md): instead of accumulating samples
  /// in the per-core buffer until the barrier, each core encodes a
  /// StreamRecord tagged (core, seq) and pushes it into its own SPSC ring;
  /// records that hit a full ring go to a lane-local spill vector that
  /// `spill` flushes at drain(). Implies sharded mode. `rings[c]` must
  /// outlive the monitor; one ring per core.
  using StreamSpillFn = std::function<void(std::span<const StreamRecord>)>;
  void enable_streaming(std::vector<util::SpscRing<StreamRecord>*> rings,
                        StreamSpillFn spill);
  [[nodiscard]] bool streaming() const noexcept { return streaming_; }

  /// Restart per-core record sequence numbers (epoch seal, after every
  /// lane's records have been consumed).
  void stream_epoch_reset();

  void on_retire(std::uint32_t core, std::uint64_t uops,
                 util::SimNs now) override;
  void on_mem_op(const MemOpEvent& event) override;

  AccessObserver* shard_sink(std::uint32_t /*core*/) override {
    return sharded_ ? this : nullptr;
  }
  void merge_shards() override { drain(); }

  /// Explicitly drain buffered records (periodic poll path). In sharded
  /// mode, drains every core's buffer in ascending core order.
  void drain();

  [[nodiscard]] const IbsConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept;
  [[nodiscard]] std::uint64_t tags_lost() const noexcept;
  [[nodiscard]] std::uint64_t interrupts() const noexcept;
  /// Modeled software overhead of collection so far.
  [[nodiscard]] util::SimNs overhead_ns() const noexcept;

  /// Checkpoint hooks (util/ckpt.hpp).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  /// Per-core state that a shard's worker thread owns exclusively in
  /// sharded mode (padded out by vector element separation; no two cores
  /// write the same element).
  struct CoreLane {
    util::Rng rng{0};
    std::vector<TraceSample> buffer;
    std::uint64_t samples = 0;
    std::uint64_t tags_lost = 0;
    std::uint64_t interrupts = 0;
    // Streaming mode only:
    util::SpscRing<StreamRecord>* ring = nullptr;  ///< not owned
    std::vector<StreamRecord> spill;  ///< ring-full overflow, never dropped
    std::uint32_t stream_seq = 0;     ///< next record seq this epoch
    std::uint32_t since_drain = 0;    ///< mirrors buffer.size() for the
                                      ///< interrupt/overhead model
  };

  void reload(std::uint32_t core);

  IbsConfig config_;
  DrainFn drain_;
  util::Rng rng_;
  std::uint64_t seed_;
  std::vector<std::int64_t> countdown_;   ///< per core
  std::vector<std::uint8_t> tag_armed_;   ///< tag waiting for this core's op
  std::vector<TraceSample> buffer_;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t tags_lost_ = 0;
  std::uint64_t interrupts_ = 0;
  bool sharded_ = false;
  bool streaming_ = false;
  StreamSpillFn stream_spill_;
  std::vector<CoreLane> lanes_;           ///< populated in sharded mode
};

}  // namespace tmprof::monitors
