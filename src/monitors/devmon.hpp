#pragma once
/// \file devmon.hpp
/// Device-side hotness monitor (the NeoMem idiom, PAPERS.md). Unlike the
/// core-pipeline profilers (IBS/PEBS sampling, A-bit scans, HWPC), a DevMon
/// sits at the memory controller of each *non-fastest* tier: it sees every
/// line fill its own device serves — no sampling sparsity — but is blind to
/// traffic absorbed by caches or served by other tiers. Each device keeps a
/// small bounded counter array (space-saving replacement, saturating
/// counters) over the physical frames it serves and reports its top-K
/// hottest frames when drained at the epoch barrier.
///
/// Determinism: events are tallied into per-core lanes (each shard thread
/// owns its lane exclusively) and folded into the shared device arrays only
/// on the main thread — at the epoch barrier in sharded mode, at drain() in
/// serial mode — in ascending core order, ascending PFN within a lane. The
/// report is therefore bitwise identical across engine thread counts.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "mem/tiers.hpp"
#include "monitors/event.hpp"
#include "util/flat_map.hpp"

namespace tmprof::monitors {

/// Geometry of every per-tier device counter array.
struct DevMonConfig {
  bool enabled = false;       ///< DriverConfig gate; the monitor itself
                              ///< only exists when enabled
  std::uint32_t slots = 256;  ///< counter entries per tier device
  std::uint32_t top_k = 64;   ///< hottest frames reported per drain
  std::uint32_t counter_max = 65535;  ///< saturation (16-bit HW counters)
  bool decay = true;          ///< halve counters after each report
};

/// One row of a device's top-K report.
struct DevMonReportEntry {
  mem::Pfn pfn = 0;
  std::uint32_t count = 0;
  mem::TierId tier = 0;       ///< device (tier) that counted the frame
};

class DevMonitor final : public AccessObserver {
 public:
  using DrainFn = std::function<void(std::span<const DevMonReportEntry>)>;

  /// `phys` provides the static frame→tier geometry (which device a fill
  /// lands on); it must outlive the monitor. One lane per simulated core.
  DevMonitor(const DevMonConfig& config, const mem::PhysMemory& phys,
             std::uint32_t cores);

  /// Install the top-K report consumer (the TMP driver).
  void set_drain(DrainFn drain) { drain_ = std::move(drain); }

  /// Switch to sharded operation: lanes are already per-core, so this only
  /// opts into running on_mem_op from shard threads. Call before events.
  void enable_sharded() { sharded_ = true; }
  [[nodiscard]] bool sharded() const noexcept { return sharded_; }

  void on_mem_op(const MemOpEvent& event) override;

  AccessObserver* shard_sink(std::uint32_t /*core*/) override {
    return sharded_ ? this : nullptr;
  }
  void merge_shards() override { merge_lanes(); }

  /// Fold outstanding lane tallies into the device arrays, then emit each
  /// device's top-K report (count descending, PFN ascending on ties) via
  /// the drain callback and apply decay. Called at the epoch horizon.
  void drain();

  [[nodiscard]] const DevMonConfig& config() const noexcept { return config_; }
  /// Device accesses counted (line fills on non-fastest tiers).
  [[nodiscard]] std::uint64_t observed() const noexcept;
  /// Counter-slot replacements forced by full arrays.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  /// Report entries emitted to the drain callback.
  [[nodiscard]] std::uint64_t reported() const noexcept { return reported_; }
  [[nodiscard]] std::uint64_t drains() const noexcept { return drains_; }
  /// Occupied counter slots on tier `tier`'s device (0 for the fast tier).
  [[nodiscard]] std::uint32_t occupied(mem::TierId tier) const;

  /// Checkpoint hooks (util/ckpt.hpp): device arrays, statistics, and any
  /// unmerged lane tallies. Geometry (slots, chain length, lane count) must
  /// match the constructed monitor or a CkptError("devmon", ...) is thrown.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  /// One entry of a device's bounded counter array.
  struct CounterSlot {
    mem::Pfn pfn = 0;
    std::uint32_t count = 0;
    bool used = false;
  };

  /// Per-core tally a shard's worker thread owns exclusively.
  struct CoreLane {
    util::FlatHashMap<std::uint64_t, std::uint32_t, util::U64Hash> counts;
    std::uint64_t observed = 0;
  };

  void merge_lanes();
  void fold(std::vector<CounterSlot>& device, mem::Pfn pfn,
            std::uint32_t add);

  DevMonConfig config_;
  const mem::PhysMemory* phys_;
  DrainFn drain_;
  bool sharded_ = false;
  std::vector<CoreLane> lanes_;
  /// Indexed by tier id; tier 0 (fastest) has no device counter array.
  std::vector<std::vector<CounterSlot>> devices_;
  std::vector<DevMonReportEntry> report_;  ///< drain scratch, capacity kept
  std::uint64_t observed_ = 0;             ///< merged-lane total
  std::uint64_t evictions_ = 0;
  std::uint64_t reported_ = 0;
  std::uint64_t drains_ = 0;
};

}  // namespace tmprof::monitors
