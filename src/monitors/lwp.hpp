#pragma once
/// \file lwp.hpp
/// AMD Lightweight Profiling model (Section II-B). LWP differs from IBS in
/// that the hardware writes event records into a ring buffer *in the
/// address space of the running process* and only interrupts when the
/// buffer fills beyond a user-configured threshold; the OS then signals
/// the process to empty its own buffer. Records are therefore batched much
/// more aggressively than IBS's kernel-buffer design, at the cost of
/// per-process buffers and user-mode-only event coverage.

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "monitors/event.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tmprof::monitors {

struct LwpConfig {
  /// Record one out of this many retired events (LWPVAL-like interval).
  std::uint64_t sample_period = 4096;
  /// Ring-buffer capacity per process, in records.
  std::uint32_t ring_capacity = 8192;
  /// Interrupt threshold as a fraction of the ring (the "user-specified
  /// threshold" of the spec).
  double interrupt_fill_fraction = 0.75;
  /// Cost model: hardware insert is nearly free; the signal + user-mode
  /// drain loop costs per record drained plus a fixed signal cost.
  util::SimNs cost_per_drained_record_ns = 60;
  util::SimNs cost_per_signal_ns = 6000;
};

/// Per-process LWP: one ring buffer per PID, as the hardware extension
/// defines (records land in the profiled process's own address space).
class LwpMonitor final : public AccessObserver {
 public:
  /// Called when a process's ring crosses the threshold: the OS signals
  /// the process, which drains its own ring.
  using DrainFn =
      std::function<void(mem::Pid, std::span<const TraceSample>)>;

  explicit LwpMonitor(const LwpConfig& config, std::uint64_t seed = 0x11f);

  void set_drain(DrainFn drain) { drain_ = std::move(drain); }

  /// Enable profiling for a process (allocates its ring).
  void enable_process(mem::Pid pid);
  void disable_process(mem::Pid pid);
  [[nodiscard]] bool enabled(mem::Pid pid) const noexcept {
    return rings_.count(pid) != 0;
  }

  void on_mem_op(const MemOpEvent& event) override;

  /// Force-drain a process's ring (e.g., at epoch end).
  void drain(mem::Pid pid);
  void drain_all();

  [[nodiscard]] std::uint64_t records_taken() const noexcept {
    return records_taken_;
  }
  [[nodiscard]] std::uint64_t records_dropped() const noexcept {
    return records_dropped_;
  }
  [[nodiscard]] std::uint64_t signals() const noexcept { return signals_; }
  [[nodiscard]] util::SimNs overhead_ns() const noexcept;

 private:
  struct Ring {
    std::vector<TraceSample> records;
    std::int64_t countdown = 0;
  };

  void reload(Ring& ring);

  LwpConfig config_;
  DrainFn drain_;
  util::Rng rng_;
  std::unordered_map<mem::Pid, Ring> rings_;
  std::uint64_t records_taken_ = 0;
  std::uint64_t records_dropped_ = 0;  ///< ring full, record lost
  std::uint64_t records_drained_ = 0;
  std::uint64_t signals_ = 0;
};

}  // namespace tmprof::monitors
