#include "monitors/pml.hpp"

#include "util/ckpt.hpp"

#include "util/assert.hpp"

namespace tmprof::monitors {

PmlMonitor::PmlMonitor(const PmlConfig& config) : config_(config) {
  TMPROF_EXPECTS(config.log_capacity >= 1);
  log_.reserve(config.log_capacity);
}

void PmlMonitor::on_dirty_set(const MemOpEvent& event) {
  // PML logs the GPA of the write aligned to 4 KiB.
  log_.push_back(event.paddr & ~(mem::kPageSize - 1));
  ++entries_logged_;
  if (log_.size() >= config_.log_capacity) {
    ++notifications_;
    drain();
  }
}

void PmlMonitor::drain() {
  if (log_.empty()) return;
  if (drain_) drain_(std::span<const mem::PhysAddr>(log_));
  log_.clear();
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void PmlMonitor::save_state(util::ckpt::Writer& w) const {
  w.put_u64(log_.size());
  for (const mem::PhysAddr paddr : log_) w.put_u64(paddr);
  w.put_u64(entries_logged_);
  w.put_u64(notifications_);
}

void PmlMonitor::load_state(util::ckpt::Reader& r) {
  log_.resize(r.get_u64());
  for (mem::PhysAddr& paddr : log_) paddr = r.get_u64();
  entries_logged_ = r.get_u64();
  notifications_ = r.get_u64();
}

}  // namespace tmprof::monitors
