#include "monitors/lwp.hpp"

#include "util/assert.hpp"

namespace tmprof::monitors {

LwpMonitor::LwpMonitor(const LwpConfig& config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  TMPROF_EXPECTS(config.sample_period >= 1);
  TMPROF_EXPECTS(config.ring_capacity >= 2);
  TMPROF_EXPECTS(config.interrupt_fill_fraction > 0.0 &&
                 config.interrupt_fill_fraction <= 1.0);
}

void LwpMonitor::reload(Ring& ring) {
  // Like IBS, randomize slightly to avoid loop lock-step.
  const std::uint64_t jitter = config_.sample_period / 16 + 1;
  ring.countdown = static_cast<std::int64_t>(
      config_.sample_period - jitter / 2 + rng_.below(jitter));
  if (ring.countdown < 1) ring.countdown = 1;
}

void LwpMonitor::enable_process(mem::Pid pid) {
  Ring& ring = rings_[pid];
  ring.records.reserve(config_.ring_capacity);
  reload(ring);
}

void LwpMonitor::disable_process(mem::Pid pid) { rings_.erase(pid); }

void LwpMonitor::on_mem_op(const MemOpEvent& event) {
  const auto it = rings_.find(event.pid);
  if (it == rings_.end()) return;  // LWP monitors only enabled user code
  Ring& ring = it->second;
  if (--ring.countdown > 0) return;
  reload(ring);
  if (ring.records.size() >= config_.ring_capacity) {
    // Hardware cannot grow the user buffer; the record is lost until the
    // process services its signal.
    ++records_dropped_;
    return;
  }
  TraceSample sample;
  sample.time = event.time;
  sample.core = event.core;
  sample.pid = event.pid;
  sample.ip = event.ip;
  sample.vaddr = event.vaddr;
  sample.paddr = event.paddr;
  sample.is_store = event.is_store;
  sample.source = event.source;
  sample.tlb_miss = event.tlb == mem::TlbHit::Miss;
  ring.records.push_back(sample);
  ++records_taken_;
  const auto threshold = static_cast<std::size_t>(
      config_.interrupt_fill_fraction *
      static_cast<double>(config_.ring_capacity));
  if (ring.records.size() >= threshold) {
    ++signals_;
    drain(event.pid);
  }
}

void LwpMonitor::drain(mem::Pid pid) {
  const auto it = rings_.find(pid);
  if (it == rings_.end() || it->second.records.empty()) return;
  records_drained_ += it->second.records.size();
  if (drain_) {
    drain_(pid, std::span<const TraceSample>(it->second.records));
  }
  it->second.records.clear();
}

void LwpMonitor::drain_all() {
  for (auto& [pid, ring] : rings_) {
    (void)ring;
    drain(pid);
  }
}

util::SimNs LwpMonitor::overhead_ns() const noexcept {
  return records_drained_ * config_.cost_per_drained_record_ns +
         signals_ * config_.cost_per_signal_ns;
}

}  // namespace tmprof::monitors
