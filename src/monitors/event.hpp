#pragma once
/// \file event.hpp
/// Microarchitectural event types that hardware monitors observe, and the
/// observer interface the access engine publishes them through. These model
/// the signals silicon exposes (retirement stream, load/store completion,
/// D-bit transitions) — a monitor sees nothing else.

#include "util/ckpt.hpp"
#include <cstdint>

#include "mem/addr.hpp"
#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "util/time.hpp"

namespace tmprof::monitors {

/// One completed memory micro-op as visible to tagging hardware.
struct MemOpEvent {
  util::SimNs time = 0;
  std::uint32_t core = 0;
  mem::Pid pid = 0;
  std::uint64_t ip = 0;        ///< synthetic instruction pointer
  mem::VirtAddr vaddr = 0;
  mem::PhysAddr paddr = 0;
  bool is_store = false;
  mem::DataSource source = mem::DataSource::L1;
  mem::TlbHit tlb = mem::TlbHit::L1;
  mem::PageSize page_size = mem::PageSize::k4K;
};

/// Hardware-event observer. The engine invokes these inline with execution;
/// a monitor must therefore be cheap on the common path (that constraint is
/// the whole subject of the paper).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// `uops` micro-ops retired on `core` (includes the memory op's uop).
  virtual void on_retire(std::uint32_t core, std::uint64_t uops,
                         util::SimNs now) {
    (void)core; (void)uops; (void)now;
  }

  /// A memory micro-op completed.
  virtual void on_mem_op(const MemOpEvent& event) { (void)event; }

  /// A D bit transitioned 0 → 1 for the page holding `event.paddr`
  /// (the hook Page-Modification Logging attaches to).
  virtual void on_dirty_set(const MemOpEvent& event) { (void)event; }

  // --- sharded-engine protocol ------------------------------------------
  /// The sharded access engine replays each simulated core on its own
  /// thread. Before a parallel step it asks every observer for a per-core
  /// sink: return an observer whose callbacks are safe to invoke from
  /// `core`'s worker thread (typically `this`, if all mutable state is
  /// per-core), or nullptr (the default) to have the engine buffer that
  /// core's events and replay them on the main thread at the epoch
  /// barrier, in ascending core order.
  virtual AccessObserver* shard_sink(std::uint32_t core) {
    (void)core;
    return nullptr;
  }

  /// Epoch-barrier hook, called on the main thread after all shards have
  /// finished (observers are merged in registration order). Implementations
  /// fold per-core state into their global view in ascending core order so
  /// results are independent of the worker-thread count.
  virtual void merge_shards() {}
};

/// A decoded trace sample, common to the IBS and PEBS models. Field set
/// follows Section III-B1: timestamp, CPU, PID, IP, virtual and physical
/// data address, access type, and cache-miss status.
struct TraceSample {
  util::SimNs time = 0;
  std::uint32_t core = 0;
  mem::Pid pid = 0;
  std::uint64_t ip = 0;
  mem::VirtAddr vaddr = 0;
  mem::PhysAddr paddr = 0;
  bool is_store = false;
  mem::DataSource source = mem::DataSource::L1;
  bool tlb_miss = false;
};

/// Checkpoint round-trip for buffered samples (util/ckpt.hpp).
inline void save_sample(util::ckpt::Writer& w, const TraceSample& s) {
  w.put_u64(s.time);
  w.put_u32(s.core);
  w.put_u64(s.pid);
  w.put_u64(s.ip);
  w.put_u64(s.vaddr);
  w.put_u64(s.paddr);
  w.put_bool(s.is_store);
  w.put_u8(static_cast<std::uint8_t>(s.source));
  w.put_bool(s.tlb_miss);
}

inline TraceSample load_sample(util::ckpt::Reader& r) {
  TraceSample s;
  s.time = r.get_u64();
  s.core = r.get_u32();
  s.pid = static_cast<mem::Pid>(r.get_u64());
  s.ip = r.get_u64();
  s.vaddr = r.get_u64();
  s.paddr = r.get_u64();
  s.is_store = r.get_bool();
  s.source = static_cast<mem::DataSource>(r.get_u8());
  s.tlb_miss = r.get_bool();
  return s;
}

}  // namespace tmprof::monitors
