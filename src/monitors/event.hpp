#pragma once
/// \file event.hpp
/// Microarchitectural event types that hardware monitors observe, and the
/// observer interface the access engine publishes them through. These model
/// the signals silicon exposes (retirement stream, load/store completion,
/// D-bit transitions) — a monitor sees nothing else.

#include "util/ckpt.hpp"
#include <cstdint>

#include "mem/addr.hpp"
#include "mem/cache.hpp"
#include "mem/tlb.hpp"
#include "util/time.hpp"

namespace tmprof::monitors {

/// One completed memory micro-op as visible to tagging hardware.
struct MemOpEvent {
  util::SimNs time = 0;
  std::uint32_t core = 0;
  mem::Pid pid = 0;
  std::uint64_t ip = 0;        ///< synthetic instruction pointer
  mem::VirtAddr vaddr = 0;
  mem::PhysAddr paddr = 0;
  bool is_store = false;
  mem::DataSource source = mem::DataSource::L1;
  mem::TlbHit tlb = mem::TlbHit::L1;
  mem::PageSize page_size = mem::PageSize::k4K;
};

/// Hardware-event observer. The engine invokes these inline with execution;
/// a monitor must therefore be cheap on the common path (that constraint is
/// the whole subject of the paper).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// `uops` micro-ops retired on `core` (includes the memory op's uop).
  virtual void on_retire(std::uint32_t core, std::uint64_t uops,
                         util::SimNs now) {
    (void)core; (void)uops; (void)now;
  }

  /// A memory micro-op completed.
  virtual void on_mem_op(const MemOpEvent& event) { (void)event; }

  /// A D bit transitioned 0 → 1 for the page holding `event.paddr`
  /// (the hook Page-Modification Logging attaches to).
  virtual void on_dirty_set(const MemOpEvent& event) { (void)event; }

  // --- sharded-engine protocol ------------------------------------------
  /// The sharded access engine replays each simulated core on its own
  /// thread. Before a parallel step it asks every observer for a per-core
  /// sink: return an observer whose callbacks are safe to invoke from
  /// `core`'s worker thread (typically `this`, if all mutable state is
  /// per-core), or nullptr (the default) to have the engine buffer that
  /// core's events and replay them on the main thread at the epoch
  /// barrier, in ascending core order.
  virtual AccessObserver* shard_sink(std::uint32_t core) {
    (void)core;
    return nullptr;
  }

  /// Epoch-barrier hook, called on the main thread after all shards have
  /// finished (observers are merged in registration order). Implementations
  /// fold per-core state into their global view in ascending core order so
  /// results are independent of the worker-thread count.
  virtual void merge_shards() {}
};

/// A decoded trace sample, common to the IBS and PEBS models. Field set
/// follows Section III-B1: timestamp, CPU, PID, IP, virtual and physical
/// data address, access type, and cache-miss status.
struct TraceSample {
  util::SimNs time = 0;
  std::uint32_t core = 0;
  mem::Pid pid = 0;
  std::uint64_t ip = 0;
  mem::VirtAddr vaddr = 0;
  mem::PhysAddr paddr = 0;
  bool is_store = false;
  mem::DataSource source = mem::DataSource::L1;
  bool tlb_miss = false;
};

// ---------------------------------------------------------------------------
// Streaming sample transport (docs/STREAMING.md)

/// Payload discriminator of a StreamRecord.
enum class StreamKind : std::uint8_t {
  Trace = 0,  ///< IBS/PEBS sample: a = paddr, c = pid, flags = store|source
  Abit = 1,   ///< A-bit scan hit: a = page_va, b = pfn, c = pid
  Dev = 2,    ///< DevMon report entry: a = pfn, b = count
};

/// Fixed-width record carried by the per-lane SPSC rings. Kind-specific
/// fields pack into three untyped words so every lane shares one ring
/// element type; (lane, seq) tag where and in what order the record was
/// produced — seq restarts at 0 each epoch, so a record's identity within
/// an epoch is the pure pair (lane, seq) regardless of when the consumer
/// gets to it.
struct StreamRecord {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t seq = 0;
  std::uint16_t lane = 0;
  StreamKind kind = StreamKind::Trace;
  std::uint8_t flags = 0;
};

inline constexpr std::uint8_t kStreamFlagStore = 0x1;

/// Encode the subset of a TraceSample the driver's filter consumes
/// (paddr, is_store, source); time/ip/vaddr never survive aggregation, so
/// the wire record stays one cache line wide.
[[nodiscard]] inline StreamRecord encode_trace_record(std::uint16_t lane,
                                                      std::uint32_t seq,
                                                      const TraceSample& s) {
  StreamRecord rec;
  rec.a = s.paddr;
  rec.c = s.pid;
  rec.seq = seq;
  rec.lane = lane;
  rec.kind = StreamKind::Trace;
  rec.flags = static_cast<std::uint8_t>(
      (s.is_store ? kStreamFlagStore : 0) |
      (static_cast<std::uint8_t>(s.source) << 1));
  return rec;
}

[[nodiscard]] inline bool trace_record_is_store(
    const StreamRecord& rec) noexcept {
  return (rec.flags & kStreamFlagStore) != 0;
}
[[nodiscard]] inline mem::DataSource trace_record_source(
    const StreamRecord& rec) noexcept {
  return static_cast<mem::DataSource>(rec.flags >> 1);
}

/// Checkpoint round-trip for spilled stream records.
inline void save_stream_record(util::ckpt::Writer& w, const StreamRecord& rec) {
  w.put_u64(rec.a);
  w.put_u64(rec.b);
  w.put_u64(rec.c);
  w.put_u32(rec.seq);
  w.put_u32(rec.lane);
  w.put_u8(static_cast<std::uint8_t>(rec.kind));
  w.put_u8(rec.flags);
}

[[nodiscard]] inline StreamRecord load_stream_record(util::ckpt::Reader& r) {
  StreamRecord rec;
  rec.a = r.get_u64();
  rec.b = r.get_u64();
  rec.c = r.get_u64();
  rec.seq = r.get_u32();
  rec.lane = static_cast<std::uint16_t>(r.get_u32());
  rec.kind = static_cast<StreamKind>(r.get_u8());
  rec.flags = r.get_u8();
  return rec;
}

/// Checkpoint round-trip for buffered samples (util/ckpt.hpp).
inline void save_sample(util::ckpt::Writer& w, const TraceSample& s) {
  w.put_u64(s.time);
  w.put_u32(s.core);
  w.put_u64(s.pid);
  w.put_u64(s.ip);
  w.put_u64(s.vaddr);
  w.put_u64(s.paddr);
  w.put_bool(s.is_store);
  w.put_u8(static_cast<std::uint8_t>(s.source));
  w.put_bool(s.tlb_miss);
}

inline TraceSample load_sample(util::ckpt::Reader& r) {
  TraceSample s;
  s.time = r.get_u64();
  s.core = r.get_u32();
  s.pid = static_cast<mem::Pid>(r.get_u64());
  s.ip = r.get_u64();
  s.vaddr = r.get_u64();
  s.paddr = r.get_u64();
  s.is_store = r.get_bool();
  s.source = static_cast<mem::DataSource>(r.get_u8());
  s.tlb_miss = r.get_bool();
  return s;
}

}  // namespace tmprof::monitors
