#pragma once
/// \file badgertrap.hpp
/// BadgerTrap model (Gandhi et al.): intercept TLB misses to selected pages
/// by *poisoning* their PTEs (reserved bit 51). A TLB miss to a poisoned
/// page triggers a hardware walk that faults; the handler counts the fault,
/// installs a valid translation directly into the TLB, and leaves the PTE
/// poisoned so the next walk faults again. Fault counts per page thus
/// estimate per-page TLB misses.
///
/// The paper reuses this machinery for its slow-memory *emulation
/// framework* (Section VI-C): pages on the slow-tier list are poisoned
/// periodically and the trap handler injects extra latency before granting
/// access. `fault_latency_ns` / `hot_extra_latency_ns` model the paper's
/// 10 µs and +13 µs constants.

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "mem/addr.hpp"
#include "mem/page_table.hpp"
#include "mem/ptw.hpp"
#include "mem/tlb.hpp"
#include "util/time.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::monitors {

struct BadgerTrapConfig {
  /// Latency the trap handler inserts before granting access (paper: 10 µs).
  util::SimNs fault_latency_ns = 10 * util::kMicrosecond;
  /// Extra latency when the faulting page is flagged hot (paper: +13 µs).
  util::SimNs hot_extra_latency_ns = 13 * util::kMicrosecond;
  /// Baseline fault/handler cost even when used purely for counting.
  util::SimNs handler_cost_ns = 1 * util::kMicrosecond;
  /// Remove the poison on the first fault instead of repoisoning
  /// (AutoNUMA-hint-fault semantics: one fault per protect pass per page).
  bool unpoison_on_fault = false;
};

/// Key identifying a poisoned page: (pid, page base VA).
struct PageKey {
  mem::Pid pid = 0;
  mem::VirtAddr page_va = 0;

  friend bool operator==(const PageKey&, const PageKey&) = default;
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const noexcept {
    std::uint64_t h = k.page_va ^ (static_cast<std::uint64_t>(k.pid) << 48);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

class BadgerTrap {
 public:
  explicit BadgerTrap(const BadgerTrapConfig& config = {});

  /// Poison the page holding `page_va`; flushes its TLB entry via the
  /// provided TLB so the next access walks (and faults).
  void poison(mem::Pid pid, mem::PageTable& table, mem::Tlb& tlb,
              mem::VirtAddr page_va, bool hot = false);

  /// Remove the poison permanently.
  void unpoison(mem::Pid pid, mem::PageTable& table, mem::VirtAddr page_va);

  /// Handle a poisoned-PTE fault discovered by the walker. Counts the
  /// fault, installs a TLB entry so execution continues (subsequent hits
  /// bypass the fault until eviction — BadgerTrap's repoison semantics),
  /// and returns the latency to charge to the access.
  util::SimNs handle_fault(mem::Pid pid, mem::PageTable& table, mem::Tlb& tlb,
                           mem::VirtAddr vaddr, bool is_store);

  /// Re-flush translations for all poisoned pages (the emulation framework
  /// "sets the protection bits periodically" — this restores fault delivery
  /// for pages whose translations were re-cached).
  void refresh(std::unordered_map<mem::Pid, mem::PageTable*>& tables,
               mem::Tlb& tlb);

  [[nodiscard]] bool is_poisoned(mem::Pid pid,
                                 mem::VirtAddr page_va) const noexcept;
  [[nodiscard]] std::uint64_t fault_count(mem::Pid pid,
                                          mem::VirtAddr page_va) const;
  [[nodiscard]] std::uint64_t total_faults() const noexcept {
    return total_faults_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] util::SimNs injected_latency_ns() const noexcept {
    return injected_latency_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t poisoned_pages() const noexcept {
    return pages_.size();
  }

  /// Checkpoint hooks (util/ckpt.hpp).
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  struct PageState {
    bool hot = false;
    bool armed = true;  ///< poison currently present in the PTE
    std::uint64_t faults = 0;
  };

  BadgerTrapConfig config_;
  /// Poison/unpoison mutate the map structure and must stay on the main
  /// thread (epoch barrier). handle_fault() may run concurrently on shard
  /// workers: it only mutates the *values* of existing entries, and the
  /// keys are shard-disjoint (a page belongs to one pid, a pid to one
  /// core), so per-entry state needs no locking — only the global tallies
  /// are contended, hence atomic. Relaxed suffices: sums are commutative,
  /// so the merged totals are deterministic regardless of interleaving.
  std::unordered_map<PageKey, PageState, PageKeyHash> pages_;
  std::atomic<std::uint64_t> total_faults_{0};
  std::atomic<util::SimNs> injected_latency_ns_{0};
};

}  // namespace tmprof::monitors
