#include "monitors/abit.hpp"

#include "util/ckpt.hpp"

namespace tmprof::monitors {

AbitScanner::AbitScanner(const AbitConfig& config) : config_(config) {}

AbitScanResult AbitScanner::scan(mem::Pid pid, mem::PageTable& table,
                                 const SampleSink& sink) {
  AbitScanResult result;
  table.walk([&](mem::VirtAddr page_va, mem::PageSize size, mem::Pte& pte) {
    ++result.ptes_visited;
    // gather_a_history(): check, save and clear the A bit.
    if (pte.test_clear_accessed()) {
      ++result.pages_accessed;
      if (sink) {
        sink(AbitSample{page_va, pte.pfn(), size});
      }
      if (config_.shootdown_on_clear && shootdown_) {
        result.shootdowns += shootdown_(pid, page_va, size);
      }
    }
  });
  result.cost_ns = result.ptes_visited * config_.cost_per_pte_ns +
                   result.shootdowns * config_.cost_per_shootdown_ns;
  total_ptes_visited_ += result.ptes_visited;
  total_pages_accessed_ += result.pages_accessed;
  overhead_ns_ += result.cost_ns;
  return result;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void AbitScanner::save_state(util::ckpt::Writer& w) const {
  w.put_u64(total_ptes_visited_);
  w.put_u64(total_pages_accessed_);
  w.put_u64(overhead_ns_);
}

void AbitScanner::load_state(util::ckpt::Reader& r) {
  total_ptes_visited_ = r.get_u64();
  total_pages_accessed_ = r.get_u64();
  overhead_ns_ = r.get_u64();
}

}  // namespace tmprof::monitors
