#include "monitors/abit.hpp"

#include "util/ckpt.hpp"

namespace tmprof::monitors {

AbitScanner::AbitScanner(const AbitConfig& config) : config_(config) {}

AbitScanResult AbitScanner::scan(mem::Pid pid, mem::PageTable& table,
                                 const SampleSink& sink) {
  if (sink) {
    return scan_fn(pid, table, [&sink](const AbitSample& s) { sink(s); });
  }
  return scan_fn(pid, table, [](const AbitSample&) {});
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void AbitScanner::save_state(util::ckpt::Writer& w) const {
  w.put_u64(total_ptes_visited_);
  w.put_u64(total_pages_accessed_);
  w.put_u64(overhead_ns_);
}

void AbitScanner::load_state(util::ckpt::Reader& r) {
  total_ptes_visited_ = r.get_u64();
  total_pages_accessed_ = r.get_u64();
  overhead_ns_ = r.get_u64();
}

}  // namespace tmprof::monitors
