#include "sim/resctrl.hpp"

namespace tmprof::sim {

ResctrlMonitor::ResctrlMonitor(System& system) : system_(system) {}

std::uint64_t ResctrlMonitor::llc_occupancy_bytes(mem::Pid pid) const {
  return system_.llc_occupancy_lines(pid) * mem::kLineSize;
}

MbmReading ResctrlMonitor::read_bandwidth(mem::Pid pid) {
  Process& proc = system_.process(pid);
  const std::uint64_t fills = proc.mem_fills();
  const util::SimNs now = system_.now();
  auto& [last_fills, last_time] = last_reads_[pid];
  MbmReading reading;
  reading.bytes = (fills - last_fills) * mem::kLineSize;
  reading.interval_ns = now - last_time;
  last_fills = fills;
  last_time = now;
  return reading;
}

double ResctrlMonitor::llc_utilization() const {
  std::uint64_t used = 0;
  // Owner 0 marks untracked lines; every process PID is >= 1000.
  for (mem::Pid pid = 1000; pid < 1000 + 64; ++pid) {
    used += system_.llc_occupancy_lines(pid);
  }
  return static_cast<double>(used * mem::kLineSize) /
         static_cast<double>(system_.llc_size_bytes());
}

}  // namespace tmprof::sim
