#pragma once
/// \file system.hpp
/// The simulated machine: cores (TLB + private caches), shared LLC, tiered
/// physical memory, PMU, processes, and the access engine that drives
/// workload references through the full translation + cache path while
/// publishing hardware events to registered monitors.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/cache.hpp"
#include "mem/tiers.hpp"
#include "mem/tlb.hpp"
#include "monitors/badgertrap.hpp"
#include "monitors/event.hpp"
#include "pmu/counters.hpp"
#include "sim/config.hpp"
#include "sim/process.hpp"
#include "telemetry/metrics.hpp"
#include "util/time.hpp"

namespace tmprof::util {
class ThreadPool;
}

namespace tmprof::telemetry {
class Telemetry;
}

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::sim {

/// Resolve a SimConfig into the tier chain the System will construct:
/// `config.tiers` verbatim when non-empty, otherwise the legacy
/// tier1/tier2(/tier3) shim fields with their historical names
/// ("tier1-dram", "tier2-nvm", "tier3-cold"). Benches and policies use
/// this to reason about the chain without re-deriving the shim rules.
[[nodiscard]] std::vector<mem::TierSpec> tier_specs(const SimConfig& config);

/// Outcome of one simulated access (returned for tests/instrumentation).
struct AccessResult {
  mem::DataSource source = mem::DataSource::L1;
  mem::TlbHit tlb = mem::TlbHit::L1;
  bool page_fault = false;
  bool protection_fault = false;
  util::SimNs latency_ns = 0;
  mem::PhysAddr paddr = 0;
};

class System {
 public:
  explicit System(const SimConfig& config);

  // --- topology -------------------------------------------------------------
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] mem::PhysMemory& phys() noexcept { return phys_; }
  [[nodiscard]] pmu::Pmu& pmu() noexcept { return pmu_; }
  [[nodiscard]] mem::Tlb& tlb(std::uint32_t core);
  /// The shared last-level cache (legacy engine; with `sharded_engine` the
  /// LLC is sliced per core — use the aggregate accessors below).
  [[nodiscard]] const mem::CacheLevel& llc() const noexcept { return llc_; }
  /// LLC occupancy-monitoring view that works for both engines: resident
  /// lines tagged `owner`, summed over slices in sharded mode.
  [[nodiscard]] std::uint64_t llc_occupancy_lines(std::uint32_t owner) const;
  /// Monitored LLC capacity (sum of slice capacities in sharded mode).
  [[nodiscard]] std::uint64_t llc_size_bytes() const noexcept;
  [[nodiscard]] util::SimNs now() const noexcept { return now_; }

  /// Advance the clock without executing ops (daemon/driver work, stalls).
  void advance_time(util::SimNs delta) noexcept;

  // --- processes ------------------------------------------------------------
  /// Register a process; returns its PID. PIDs start at 1000.
  mem::Pid add_process(workloads::WorkloadPtr workload, double weight = 1.0);
  [[nodiscard]] std::vector<Process*> processes();
  [[nodiscard]] Process& process(mem::Pid pid);

  // --- monitors ---------------------------------------------------------
  void add_observer(monitors::AccessObserver* observer);
  void remove_observer(monitors::AccessObserver* observer);
  /// Attach the BadgerTrap whose poisoned pages this system must fault on.
  void set_badgertrap(monitors::BadgerTrap* trap) { badgertrap_ = trap; }
  /// Generic protection-fault handler, consulted before the BadgerTrap:
  /// returns the latency to charge and must leave a usable translation
  /// (swap-style managers unpoison + remap inside the hook). The access
  /// is re-walked honoring poison after the hook runs.
  using FaultHook =
      std::function<util::SimNs(Process&, mem::VirtAddr, bool is_store)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Attach (or with null, detach) the telemetry sink. Resolves global and
  /// per-core shard handles for the access-path metrics; the shard cells
  /// merge at the step_parallel epoch barrier in ascending core order, so
  /// exported values are identical across engine thread counts and match
  /// the serial engine (docs/OBSERVABILITY.md).
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Install (or with null, remove) a callback step_parallel invokes on the
  /// calling thread while worker shards execute. The streaming driver hooks
  /// its ring pump here so sample merging overlaps shard execution instead
  /// of queueing behind the barrier; with an inline (null-pool) run it
  /// never fires and the rings simply drain at the seal — results are
  /// bitwise identical either way (docs/STREAMING.md).
  void set_step_pump(std::function<void()> pump) {
    step_pump_ = std::move(pump);
  }

  // --- execution --------------------------------------------------------
  /// Execute `ops` memory operations, scheduling processes by weight with
  /// fixed core affinity (pid → core round-robin). Returns sim time spent.
  util::SimNs step(std::uint64_t ops);

  /// Sharded-engine epoch step: every simulated core replays its own
  /// processes' slice of the same `ops` schedule positions against
  /// core-private TLB/L1/L2/LLC-slice/arena/PMU state, then shard results
  /// merge at an epoch barrier in ascending core order. Requires
  /// `config().sharded_engine` and no fault hook (BadgerTrap is fine). If
  /// `pool` is null the shards run inline on the calling thread — results
  /// are bitwise identical either way. Returns sim time spent (max over
  /// shards, since cores run concurrently).
  util::SimNs step_parallel(std::uint64_t ops, util::ThreadPool* pool);

  /// Execute one access for a specific process (tests / custom drivers).
  AccessResult access(Process& proc, mem::VirtAddr vaddr, bool is_store,
                      std::uint32_t ip);

  // --- kernel services --------------------------------------------------
  /// System-wide TLB shootdown for one page; returns IPIs issued.
  std::uint64_t shootdown(mem::Pid pid, mem::VirtAddr page_va,
                          mem::PageSize size);

  /// Migrate the page mapped at (pid, page_va) to `target` tier. Updates
  /// the PTE, frees the old frame, and invalidates stale translations.
  /// Returns false if the target tier has no room.
  bool migrate_page(mem::Pid pid, mem::VirtAddr page_va, mem::TierId target);

  /// Tier used for first-touch allocations (0 = fill fast memory first,
  /// falling back to slower tiers — the paper's first-come baseline).
  void set_first_touch_tier(mem::TierId tier) noexcept {
    first_touch_tier_ = tier;
  }

  // --- statistics -------------------------------------------------------
  [[nodiscard]] std::uint64_t total_ops() const noexcept { return total_ops_; }

  // --- checkpoint -------------------------------------------------------
  /// Serialize the full machine state (clock, processes incl. page tables
  /// and workload cursors, physical memory, PMU, caches, TLBs). The System
  /// must be *reconstructed* the same way (same config, same add_process
  /// sequence) before load_state overwrites its dynamic state; TLB entries
  /// rebind their PTE pointers against the reloaded page tables.
  void save_state(util::ckpt::Writer& w);
  void load_state(util::ckpt::Reader& r);

  /// Base VA of every process's code region (text segment analog).
  static constexpr mem::VirtAddr kCodeBase = 0x400000;

 private:
  struct Core {
    mem::Tlb tlb;
    mem::CacheHierarchy caches;
  };

  /// Everything one access needs that is per-shard in parallel mode: the
  /// serial engine binds it to the global clock and the full observer list,
  /// a shard binds it to its own clock, arena, and resolved sinks.
  struct ExecContext {
    std::uint32_t core_idx = 0;
    Core* core = nullptr;
    pmu::PmuCore* pmu = nullptr;
    util::SimNs now = 0;
    std::uint32_t arena = 0;
    std::uint64_t* total_ops = nullptr;
    /// Observers whose callbacks may run on this shard's thread.
    const std::vector<monitors::AccessObserver*>* direct = nullptr;
    /// Event log for observers without a shard sink (replayed at the
    /// barrier in core order); null on the serial path.
    std::vector<std::pair<monitors::MemOpEvent, bool>>* log = nullptr;
    /// Telemetry cells: global on the serial path, shard-local in parallel
    /// mode (null handles when telemetry is detached — free no-ops).
    telemetry::Counter ops;
    telemetry::HistogramHandle latency;
  };

  void rebuild_schedule();
  Process& handle_page_fault(Process& proc, mem::VirtAddr vaddr,
                             std::uint32_t arena);
  util::SimNs instruction_fetch(Process& proc, std::uint32_t ip,
                                ExecContext& ctx);
  AccessResult access_impl(Process& proc, mem::VirtAddr vaddr, bool is_store,
                           std::uint32_t ip, ExecContext& ctx);

  SimConfig config_;
  mem::PhysMemory phys_;
  pmu::Pmu pmu_;
  mem::CacheLevel llc_;
  /// Per-core LLC slices (sharded engine only; empty otherwise). Slices
  /// keep the total way count and a power-of-two fraction of the sets.
  std::vector<std::unique_ptr<mem::CacheLevel>> llc_slices_;
  std::vector<Core> cores_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<monitors::AccessObserver*> observers_;
  monitors::BadgerTrap* badgertrap_ = nullptr;
  FaultHook fault_hook_;
  std::function<void()> step_pump_;
  mem::TierId first_touch_tier_ = 0;

  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter ops_counter_;
  telemetry::Counter migrations_;
  telemetry::Counter shootdown_ipis_;
  telemetry::HistogramHandle access_latency_;
  std::vector<telemetry::Counter> shard_ops_;
  std::vector<telemetry::HistogramHandle> shard_latency_;

  std::vector<std::uint32_t> schedule_;  ///< weighted process indices
  std::size_t schedule_cursor_ = 0;
  util::SimNs now_ = 0;
  std::uint64_t total_ops_ = 0;
  mem::Pid next_pid_ = 1000;
};

}  // namespace tmprof::sim
