#pragma once
/// \file resctrl.hpp
/// Resource Control monitoring model (the paper's footnote 3: "additional
/// monitoring metrics, such as cache occupancy and memory bandwidth, have
/// been made available via the Resource Control hardware feature").
/// Models Intel CMT/MBM-style per-RMID monitoring, with one RMID per
/// process: LLC occupancy from line tags and memory bandwidth from demand
/// fill counts.
///
/// Like the paper's HWPCs, these are near-zero-overhead, very coarse
/// signals: they can pick *which process* deserves profiling and whether
/// the memory subsystem is busy, never which pages are hot.

#include <cstdint>
#include <unordered_map>

#include "mem/addr.hpp"
#include "sim/system.hpp"
#include "util/time.hpp"

namespace tmprof::sim {

/// One bandwidth reading.
struct MbmReading {
  std::uint64_t bytes = 0;       ///< bytes transferred since last read
  util::SimNs interval_ns = 0;   ///< elapsed simulated time
  [[nodiscard]] double gib_per_s() const noexcept {
    if (interval_ns == 0) return 0.0;
    return static_cast<double>(bytes) /
           (static_cast<double>(interval_ns) * 1.073741824);
  }
};

class ResctrlMonitor {
 public:
  explicit ResctrlMonitor(System& system);

  /// LLC bytes currently occupied by a process (CMT read).
  [[nodiscard]] std::uint64_t llc_occupancy_bytes(mem::Pid pid) const;

  /// Memory bandwidth consumed by a process since the previous read of
  /// the same PID (MBM read; first read covers process lifetime).
  MbmReading read_bandwidth(mem::Pid pid);

  /// Aggregate occupancy fraction of the LLC that is tracked (non-free).
  [[nodiscard]] double llc_utilization() const;

 private:
  System& system_;
  std::unordered_map<mem::Pid, std::pair<std::uint64_t, util::SimNs>>
      last_reads_;  ///< pid -> (fills, time) at previous read
};

}  // namespace tmprof::sim
