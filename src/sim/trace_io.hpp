#pragma once
/// \file trace_io.hpp
/// Raw memory-op trace capture and replay. The paper's footnote 2 notes
/// that full traces (Pin/gem5-style) suit *postmortem* analysis but not
/// online scheduling; this module provides exactly that postmortem path:
/// a TraceWriter observer records every memory op to a compact binary
/// file, and a TraceReplayer later feeds the stream back into any set of
/// monitor models without re-running the workload or the machine.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "monitors/event.hpp"

namespace tmprof::sim {

/// One packed trace record (fixed 40-byte layout, little-endian host).
struct TraceRecord {
  std::uint64_t time;
  std::uint64_t vaddr;
  std::uint64_t paddr;
  std::uint32_t pid;
  std::uint32_t ip;
  std::uint8_t core;
  std::uint8_t is_store;
  std::uint8_t source;     ///< mem::DataSource
  std::uint8_t tlb;        ///< mem::TlbHit
  std::uint8_t page_size;  ///< mem::PageSize
  std::uint8_t pad[3];
};
static_assert(sizeof(TraceRecord) == 40);

/// Observer that appends every memory op to a binary trace file.
class TraceWriter final : public monitors::AccessObserver {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter() override;

  void on_mem_op(const monitors::MemOpEvent& event) override;

  /// Flush buffered records to disk.
  void flush();

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_;
  }

 private:
  std::ofstream out_;
  std::vector<TraceRecord> buffer_;
  std::uint64_t records_ = 0;
};

/// Streams a recorded trace back through observers.
class TraceReplayer {
 public:
  explicit TraceReplayer(const std::string& path);

  void add_observer(monitors::AccessObserver* observer);

  /// Replay up to `max_records` ops (0 = all). Returns ops replayed.
  /// on_retire is synthesized with `uops_per_op` per op so IBS-style
  /// monitors tag correctly.
  std::uint64_t replay(std::uint64_t max_records = 0,
                       std::uint64_t uops_per_op = 4);

 private:
  std::ifstream in_;
  std::vector<monitors::AccessObserver*> observers_;
};

}  // namespace tmprof::sim
