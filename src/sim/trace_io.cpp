#include "sim/trace_io.hpp"

#include <algorithm>
#include <stdexcept>

namespace tmprof::sim {

namespace {
constexpr std::size_t kBufferRecords = 4096;
constexpr char kMagic[8] = {'t', 'm', 'p', 't', 'r', 'c', '0', '1'};
}  // namespace

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary) {
  if (!out_) throw std::runtime_error("TraceWriter: cannot open " + path);
  out_.write(kMagic, sizeof(kMagic));
  buffer_.reserve(kBufferRecords);
}

TraceWriter::~TraceWriter() { flush(); }

void TraceWriter::on_mem_op(const monitors::MemOpEvent& event) {
  TraceRecord rec{};
  rec.time = event.time;
  rec.vaddr = event.vaddr;
  rec.paddr = event.paddr;
  rec.pid = event.pid;
  rec.ip = event.ip;
  rec.core = static_cast<std::uint8_t>(event.core);
  rec.is_store = event.is_store ? 1 : 0;
  rec.source = static_cast<std::uint8_t>(event.source);
  rec.tlb = static_cast<std::uint8_t>(event.tlb);
  rec.page_size = static_cast<std::uint8_t>(event.page_size);
  buffer_.push_back(rec);
  ++records_;
  if (buffer_.size() >= kBufferRecords) flush();
}

void TraceWriter::flush() {
  if (buffer_.empty()) return;
  out_.write(reinterpret_cast<const char*>(buffer_.data()),
             static_cast<std::streamsize>(buffer_.size() *
                                          sizeof(TraceRecord)));
  buffer_.clear();
}

TraceReplayer::TraceReplayer(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("TraceReplayer: cannot open " + path);
  char magic[sizeof(kMagic)];
  in_.read(magic, sizeof(magic));
  if (in_.gcount() != sizeof(magic) ||
      !std::equal(std::begin(magic), std::end(magic), std::begin(kMagic))) {
    throw std::runtime_error("TraceReplayer: bad trace header in " + path);
  }
}

void TraceReplayer::add_observer(monitors::AccessObserver* observer) {
  observers_.push_back(observer);
}

std::uint64_t TraceReplayer::replay(std::uint64_t max_records,
                                    std::uint64_t uops_per_op) {
  std::uint64_t replayed = 0;
  TraceRecord rec;
  while (max_records == 0 || replayed < max_records) {
    in_.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (in_.gcount() == 0) break;
    if (in_.gcount() != sizeof(rec)) {
      throw std::runtime_error("TraceReplayer: truncated record");
    }
    monitors::MemOpEvent event;
    event.time = rec.time;
    event.core = rec.core;
    event.pid = rec.pid;
    event.ip = rec.ip;
    event.vaddr = rec.vaddr;
    event.paddr = rec.paddr;
    event.is_store = rec.is_store != 0;
    event.source = static_cast<mem::DataSource>(rec.source);
    event.tlb = static_cast<mem::TlbHit>(rec.tlb);
    event.page_size = static_cast<mem::PageSize>(rec.page_size);
    for (monitors::AccessObserver* obs : observers_) {
      obs->on_retire(event.core, uops_per_op, event.time);
      obs->on_mem_op(event);
    }
    ++replayed;
  }
  return replayed;
}

}  // namespace tmprof::sim
