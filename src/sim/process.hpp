#pragma once
/// \file process.hpp
/// A simulated process: a PID, a private page table, a workload generator,
/// and resource accounting (CPU share, RSS) that the TMP daemon's PID
/// filter consumes.

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "mem/addr.hpp"
#include "mem/page_table.hpp"
#include "mem/tiers.hpp"
#include "workloads/workload.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::sim {

class Process {
 public:
  /// \param weight  scheduling weight (relative share of issued ops);
  ///                lets experiments create low-CPU background processes
  ///                that the daemon's filter should skip.
  Process(mem::Pid pid, workloads::WorkloadPtr workload, double weight = 1.0);

  [[nodiscard]] mem::Pid pid() const noexcept { return pid_; }
  [[nodiscard]] mem::PageTable& page_table() noexcept { return table_; }
  [[nodiscard]] const mem::PageTable& page_table() const noexcept {
    return table_;
  }
  [[nodiscard]] workloads::Workload& workload() noexcept { return *workload_; }
  [[nodiscard]] double weight() const noexcept { return weight_; }

  /// Base of this process's heap mapping. Every process uses the same base
  /// (private address spaces), which also exercises PID-tagged TLBs.
  [[nodiscard]] mem::VirtAddr heap_base() const noexcept {
    return 0x5500000000ULL;
  }
  [[nodiscard]] mem::VirtAddr vaddr_of(std::uint64_t offset) const noexcept {
    return heap_base() + offset;
  }

  // --- resource accounting -------------------------------------------------
  void charge_ops(std::uint64_t ops) noexcept { ops_issued_ += ops; }
  void note_mapped_page(mem::PageSize size) noexcept {
    rss_pages_ += mem::pages_in(size);
  }
  /// A demand line fill reached memory tier `tier` on this process's
  /// behalf (memory-bandwidth monitoring + per-process hitrate input).
  /// Per-tier tallies use a fixed mem::kMaxTiers-wide array so the access
  /// hot path never allocates, whatever the chain depth.
  void note_mem_fill(mem::TierId tier) noexcept {
    ++mem_fills_;
    ++tier_fills_[tier < mem::kMaxTiers ? tier : mem::kMaxTiers - 1];
  }
  [[nodiscard]] std::uint64_t ops_issued() const noexcept {
    return ops_issued_;
  }
  [[nodiscard]] std::uint64_t rss_pages() const noexcept { return rss_pages_; }
  [[nodiscard]] std::uint64_t mem_fills() const noexcept { return mem_fills_; }
  [[nodiscard]] std::uint64_t tier0_fills() const noexcept {
    return tier_fills_[0];
  }
  /// Fills served by memory tier `tier` (0 for tiers past the chain).
  [[nodiscard]] std::uint64_t tier_fills(mem::TierId tier) const noexcept {
    return tier < mem::kMaxTiers ? tier_fills_[tier] : 0;
  }
  /// Fraction of this process's memory accesses served by the fast tier.
  [[nodiscard]] double tier0_hitrate() const noexcept {
    return mem_fills_ == 0 ? 1.0
                           : static_cast<double>(tier_fills_[0]) /
                                 static_cast<double>(mem_fills_);
  }

  /// Checkpoint hooks (util/ckpt.hpp): page table, workload generator and
  /// accounting counters. Identity (pid, weight) comes from reconstruction.
  void save_state(util::ckpt::Writer& w);
  void load_state(util::ckpt::Reader& r);

 private:
  mem::Pid pid_;
  workloads::WorkloadPtr workload_;
  double weight_;
  mem::PageTable table_;
  std::uint64_t ops_issued_ = 0;
  std::uint64_t rss_pages_ = 0;
  std::uint64_t mem_fills_ = 0;
  std::array<std::uint64_t, mem::kMaxTiers> tier_fills_{};
};

}  // namespace tmprof::sim
