#include "sim/system.hpp"

#include "util/ckpt.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mem/ptw.hpp"
#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tmprof::sim {

using pmu::Event;

std::vector<mem::TierSpec> tier_specs(const SimConfig& config) {
  if (!config.tiers.empty()) {
    TMPROF_EXPECTS(config.tiers.size() <= mem::kMaxTiers);
    return config.tiers;
  }
  // Legacy shim: the historical two/three-tier fields, with the historical
  // tier names, so every pre-chain experiment stays bitwise identical.
  std::vector<mem::TierSpec> specs{
      mem::TierSpec{"tier1-dram", config.tier1_frames, config.tier1_read_ns,
                    config.tier1_write_ns},
      mem::TierSpec{"tier2-nvm", config.tier2_frames, config.tier2_read_ns,
                    config.tier2_write_ns}};
  if (config.tier3_frames > 0) {
    specs.push_back(mem::TierSpec{"tier3-cold", config.tier3_frames,
                                  config.tier3_read_ns,
                                  config.tier3_write_ns});
  }
  return specs;
}

namespace {
std::uint64_t pow2_floor(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

// Access-latency histogram geometry: 64 ns buckets up to 4 µs covers every
// modeled latency short of a major fault; the rest lands in overflow.
constexpr std::uint64_t kLatencyHistHi = 4096;
constexpr std::size_t kLatencyHistBuckets = 64;
}  // namespace

System::System(const SimConfig& config)
    : config_(config),
      phys_(tier_specs(config), config.sharded_engine ? config.cores : 1),
      pmu_(config.cores, config.pmu_registers),
      // With the sharded engine the LLC lives in per-core slices; keep the
      // shared-LLC member at its minimum legal geometry (one set) so it
      // costs nothing.
      llc_(config.sharded_engine
               ? mem::kLineSize * config.llc_ways
               : config.llc_bytes,
           config.llc_ways) {
  TMPROF_EXPECTS(config.cores >= 1);
  if (config.sharded_engine) {
    // Slice the LLC: same associativity, a power-of-two fraction of the
    // sets per core (CacheLevel indexes with a mask). Rounding down keeps
    // the slice a valid geometry; the few percent of capacity lost to
    // rounding is a modeling choice, not an error.
    const std::uint64_t total_sets =
        config.llc_bytes /
        (static_cast<std::uint64_t>(config.llc_ways) * mem::kLineSize);
    const std::uint64_t slice_sets =
        pow2_floor(std::max<std::uint64_t>(1, total_sets / config.cores));
    const std::uint64_t slice_bytes =
        slice_sets * config.llc_ways * mem::kLineSize;
    llc_slices_.reserve(config.cores);
    for (std::uint32_t c = 0; c < config.cores; ++c) {
      llc_slices_.push_back(
          std::make_unique<mem::CacheLevel>(slice_bytes, config.llc_ways));
    }
  }
  cores_.reserve(config.cores);
  for (std::uint32_t c = 0; c < config.cores; ++c) {
    mem::CacheLevel* llc =
        config.sharded_engine ? llc_slices_[c].get() : &llc_;
    cores_.push_back(Core{
        mem::Tlb(config.l1_tlb, config.l2_tlb),
        mem::CacheHierarchy(config.l1_bytes, config.l1_ways, config.l2_bytes,
                            config.l2_ways, llc, config.prefetch)});
  }
}

mem::Tlb& System::tlb(std::uint32_t core) {
  TMPROF_EXPECTS(core < cores_.size());
  return cores_[core].tlb;
}

std::uint64_t System::llc_occupancy_lines(std::uint32_t owner) const {
  if (llc_slices_.empty()) return llc_.occupancy_lines(owner);
  std::uint64_t total = 0;
  for (const auto& slice : llc_slices_) total += slice->occupancy_lines(owner);
  return total;
}

std::uint64_t System::llc_size_bytes() const noexcept {
  if (llc_slices_.empty()) return llc_.size_bytes();
  std::uint64_t total = 0;
  for (const auto& slice : llc_slices_) total += slice->size_bytes();
  return total;
}

void System::advance_time(util::SimNs delta) noexcept { now_ += delta; }

mem::Pid System::add_process(workloads::WorkloadPtr workload, double weight) {
  const mem::Pid pid = next_pid_++;
  processes_.push_back(std::make_unique<Process>(pid, std::move(workload),
                                                 weight));
  rebuild_schedule();
  if (phys_.arenas() > 1) {
    // Re-carve the per-core arenas to match the processes each core will
    // actually serve: an equal split starves workloads whose processes
    // cluster on few cores (a single process would get 1/cores of every
    // tier). The weights depend only on the process list, never on thread
    // count, so the carve — and thus every PFN — stays deterministic.
    // Once allocation has begun rebalance_arenas refuses and we keep the
    // carve processes have been faulting into.
    std::vector<std::uint64_t> per_core(config_.cores, 0);
    for (const auto& proc : processes_) {
      ++per_core[static_cast<std::uint32_t>(proc->pid()) % config_.cores];
    }
    phys_.rebalance_arenas(per_core);
  }
  return pid;
}

std::vector<Process*> System::processes() {
  std::vector<Process*> procs;
  procs.reserve(processes_.size());
  for (auto& p : processes_) procs.push_back(p.get());
  return procs;
}

Process& System::process(mem::Pid pid) {
  for (auto& p : processes_) {
    if (p->pid() == pid) return *p;
  }
  TMPROF_ASSERT(false);
  return *processes_.front();
}

void System::add_observer(monitors::AccessObserver* observer) {
  TMPROF_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void System::remove_observer(monitors::AccessObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

void System::set_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  shard_ops_.clear();
  shard_latency_.clear();
  if (telemetry == nullptr) {
    ops_counter_ = {};
    migrations_ = {};
    shootdown_ipis_ = {};
    access_latency_ = {};
    pmu_.set_telemetry_counter({});
    return;
  }
  telemetry::MetricsRegistry& m = telemetry->metrics();
  ops_counter_ = m.counter("system_ops_total");
  migrations_ = m.counter("system_migrations_total");
  shootdown_ipis_ = m.counter("system_shootdown_ipis_total");
  access_latency_ = m.histogram("system_access_latency_ns", 0, kLatencyHistHi,
                                kLatencyHistBuckets);
  pmu_.set_telemetry_counter(m.counter("pmu_reads_total"));
  // One shard per simulated core (never per worker thread): the shard → core
  // decomposition is fixed by the config, so merged values are bitwise
  // thread-count-invariant.
  m.ensure_shards(config_.cores);
  shard_ops_.reserve(config_.cores);
  shard_latency_.reserve(config_.cores);
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    shard_ops_.push_back(m.shard_counter(c, "system_ops_total"));
    shard_latency_.push_back(m.shard_histogram(
        c, "system_access_latency_ns", 0, kLatencyHistHi, kLatencyHistBuckets));
  }
}

void System::rebuild_schedule() {
  // Each process appears round(weight * 8) times (>= 1) in the rotation.
  schedule_.clear();
  double min_weight = 1e9;
  for (const auto& p : processes_) min_weight = std::min(min_weight, p->weight());
  for (std::uint32_t i = 0; i < processes_.size(); ++i) {
    const double w = processes_[i]->weight() / min_weight;
    const auto slots = static_cast<std::uint32_t>(std::lround(w * 1.0));
    for (std::uint32_t s = 0; s < std::max(1U, slots); ++s) {
      schedule_.push_back(i);
    }
  }
  // Interleave: sort by (slot index within process, process index) so the
  // rotation spreads each process's slots out rather than clustering them.
  std::vector<std::uint32_t> interleaved;
  interleaved.reserve(schedule_.size());
  std::vector<std::uint32_t> remaining(processes_.size(), 0);
  for (std::uint32_t idx : schedule_) remaining[idx] += 1;
  bool any = true;
  while (any) {
    any = false;
    for (std::uint32_t i = 0; i < remaining.size(); ++i) {
      if (remaining[i] > 0) {
        interleaved.push_back(i);
        --remaining[i];
        any = true;
      }
    }
  }
  schedule_ = std::move(interleaved);
  schedule_cursor_ = 0;
}

util::SimNs System::step(std::uint64_t ops) {
  TMPROF_EXPECTS(!processes_.empty());
  const util::SimNs start = now_;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint32_t proc_idx = schedule_[schedule_cursor_];
    schedule_cursor_ = (schedule_cursor_ + 1) % schedule_.size();
    Process& proc = *processes_[proc_idx];
    const workloads::MemRef ref = proc.workload().next();
    access(proc, proc.vaddr_of(ref.offset), ref.is_store, ref.ip);
  }
  return now_ - start;
}

util::SimNs System::step_parallel(std::uint64_t ops, util::ThreadPool* pool) {
  TMPROF_EXPECTS(config_.sharded_engine);
  TMPROF_EXPECTS(!processes_.empty());
  // Hook-based managers (swap-style, AutoNUMA emulation) mutate cross-shard
  // state inside the access path; they need the serial engine.
  TMPROF_EXPECTS(!fault_hook_);
  const util::SimNs start = now_;
  const std::uint32_t n_cores = config_.cores;

  // Resolve every observer once per core: either it hands back a sink whose
  // callbacks are safe on that core's worker thread, or the engine buffers
  // the core's events and replays them at the barrier below.
  std::vector<std::vector<monitors::AccessObserver*>> direct(n_cores);
  std::vector<monitors::AccessObserver*> buffered;
  for (monitors::AccessObserver* obs : observers_) {
    bool needs_buffering = false;
    for (std::uint32_t c = 0; c < n_cores; ++c) {
      if (monitors::AccessObserver* sink = obs->shard_sink(c)) {
        direct[c].push_back(sink);
      } else {
        needs_buffering = true;
      }
    }
    if (needs_buffering) buffered.push_back(obs);
  }

  struct Shard {
    util::SimNs elapsed = 0;
    std::uint64_t executed = 0;
    std::vector<std::pair<monitors::MemOpEvent, bool>> log;
  };
  std::vector<Shard> shards(n_cores);
  const std::size_t len = schedule_.size();

  // Every shard scans the same `ops` schedule positions and executes only
  // its own processes' slots, so the global op interleaving — and with it
  // each shard's reference stream — is a pure function of the schedule,
  // never of thread timing.
  auto run_shard = [&](std::uint32_t s) {
    Shard& shard = shards[s];
    ExecContext ctx;
    ctx.core_idx = s;
    ctx.core = &cores_[s];
    ctx.pmu = &pmu_.core(s);
    ctx.now = start;
    ctx.arena = s;
    ctx.total_ops = &shard.executed;
    ctx.direct = &direct[s];
    ctx.log = buffered.empty() ? nullptr : &shard.log;
    if (!shard_ops_.empty()) {
      ctx.ops = shard_ops_[s];
      ctx.latency = shard_latency_[s];
    }
    std::size_t cursor = schedule_cursor_;
    for (std::uint64_t i = 0; i < ops; ++i) {
      const std::uint32_t proc_idx = schedule_[cursor];
      cursor = cursor + 1 == len ? 0 : cursor + 1;
      Process& proc = *processes_[proc_idx];
      if (static_cast<std::uint32_t>(proc.pid()) % n_cores != s) continue;
      const workloads::MemRef ref = proc.workload().next();
      access_impl(proc, proc.vaddr_of(ref.offset), ref.is_store, ref.ip, ctx);
    }
    shard.elapsed = ctx.now - start;
  };

  if (pool != nullptr) {
    for (std::uint32_t s = 0; s < n_cores; ++s) {
      pool->submit(s, [&run_shard, s] { run_shard(s); });
    }
    if (step_pump_) {
      // Streaming transport: the main thread consumes the monitors' sample
      // rings while the shards are still producing, so the merge work the
      // barrier used to do happens under the shadow of shard execution.
      pool->wait_idle_pumping(step_pump_);
    } else {
      pool->wait_idle();
    }
  } else {
    for (std::uint32_t s = 0; s < n_cores; ++s) run_shard(s);
  }

  // ---- epoch barrier: merge shard state in ascending core order ----------
  for (const Shard& shard : shards) {
    for (const auto& [event, dirty] : shard.log) {
      for (monitors::AccessObserver* obs : buffered) {
        obs->on_retire(event.core, config_.uops_per_op, event.time);
        obs->on_mem_op(event);
        if (dirty) obs->on_dirty_set(event);
      }
    }
  }
  for (monitors::AccessObserver* obs : observers_) obs->merge_shards();
  if (telemetry_ != nullptr) {
    telemetry_->metrics().merge_shards();
    for (std::uint32_t s = 0; s < n_cores; ++s) {
      telemetry_->span("shard.step", start, start + shards[s].elapsed,
                       telemetry::kTidShardBase + s);
    }
  }

  util::SimNs max_elapsed = 0;
  for (const Shard& shard : shards) {
    max_elapsed = std::max(max_elapsed, shard.elapsed);
    total_ops_ += shard.executed;
  }
  schedule_cursor_ = (schedule_cursor_ + ops) % len;
  // Cores ran concurrently: wall-clock advances by the slowest shard. Each
  // core's event stream stays monotone because its next epoch starts at or
  // after its own elapsed time.
  now_ = start + max_elapsed;
  return max_elapsed;
}

util::SimNs System::instruction_fetch(Process& proc, std::uint32_t ip,
                                      ExecContext& ctx) {
  // Map the workload's synthetic code location (its phase id) to a spot in
  // the process's code region; distinct phases land on distinct pages.
  std::uint64_t mix = ip;
  const mem::VirtAddr code_va =
      kCodeBase + (util::splitmix64(mix) % config_.code_bytes_per_process);
  if (ctx.core->tlb.lookup(proc.pid(), code_va).level != mem::TlbHit::Miss) {
    return 0;  // fetch translation cached: free
  }
  ctx.pmu->record(Event::ItlbWalk, ctx.now);
  util::SimNs latency = 0;
  mem::WalkResult walk =
      mem::PageTableWalker::walk(proc.page_table(), code_va, false);
  if (walk.status == mem::WalkResult::Status::NotPresent) {
    // Demand-map the code page (text is always 4 KiB-mapped).
    const mem::VirtAddr page_va = mem::page_base(code_va, mem::PageSize::k4K);
    const auto pfn = phys_.alloc(first_touch_tier_, proc.pid(), page_va,
                                 mem::PageSize::k4K, ctx.arena);
    TMPROF_ASSERT(pfn.has_value());
    proc.page_table().map(page_va, *pfn, mem::PageSize::k4K);
    proc.note_mapped_page(mem::PageSize::k4K);
    ctx.pmu->record(Event::PageFault, ctx.now);
    latency += config_.page_fault_ns;
    walk = mem::PageTableWalker::walk(proc.page_table(), code_va, false);
  } else if (walk.status == mem::WalkResult::Status::Poisoned) {
    // Code pages can be poisoned too (AutoNUMA-style protection covers
    // every VMA); the fetch takes the same protection fault as a load.
    ctx.pmu->record(Event::ProtectionFault, ctx.now);
    if (fault_hook_) {
      latency += fault_hook_(proc, code_va, false);
    } else {
      TMPROF_ASSERT(badgertrap_ != nullptr);
      latency += badgertrap_->handle_fault(proc.pid(), proc.page_table(),
                                           ctx.core->tlb, code_va, false);
    }
    walk = mem::PageTableWalker::walk(proc.page_table(), code_va, false,
                                      /*honor_poison=*/false);
  }
  TMPROF_ASSERT(walk.status == mem::WalkResult::Status::Ok);
  if (walk.set_accessed) ctx.pmu->record(Event::PtwAbitSet, ctx.now);
  ctx.core->tlb.fill(proc.pid(), walk.page_va, walk.size, walk.pte,
                     walk.pte->dirty());
  latency += walk.levels * config_.walk_level_ns;
  return latency;
}

Process& System::handle_page_fault(Process& proc, mem::VirtAddr vaddr,
                                   std::uint32_t arena) {
  const mem::PageSize size = proc.workload().page_size();
  const mem::VirtAddr page_va = mem::page_base(vaddr, size);
  const auto pfn =
      phys_.alloc(first_touch_tier_, proc.pid(), page_va, size, arena);
  TMPROF_ASSERT(pfn.has_value());  // experiments size tiers to fit
  proc.page_table().map(page_va, *pfn, size);
  proc.note_mapped_page(size);
  return proc;
}

AccessResult System::access(Process& proc, mem::VirtAddr vaddr, bool is_store,
                            std::uint32_t ip) {
  const std::uint32_t core_idx =
      static_cast<std::uint32_t>(proc.pid()) % config_.cores;
  ExecContext ctx;
  ctx.core_idx = core_idx;
  ctx.core = &cores_[core_idx];
  ctx.pmu = &pmu_.core(core_idx);
  ctx.now = now_;
  // With per-core arenas (sharded config), single accesses allocate from
  // the same arena a parallel step would — the two paths stay bit-equal.
  ctx.arena = phys_.arenas() > 1 ? core_idx : 0;
  ctx.total_ops = &total_ops_;
  ctx.direct = &observers_;
  ctx.ops = ops_counter_;
  ctx.latency = access_latency_;
  const AccessResult result = access_impl(proc, vaddr, is_store, ip, ctx);
  now_ = ctx.now;
  return result;
}

AccessResult System::access_impl(Process& proc, mem::VirtAddr vaddr,
                                 bool is_store, std::uint32_t ip,
                                 ExecContext& ctx) {
  Core& core = *ctx.core;
  pmu::PmuCore& pmu_core = *ctx.pmu;
  AccessResult result;
  util::SimNs latency = config_.base_op_ns;

  proc.charge_ops(1);
  ++*ctx.total_ops;
  pmu_core.record(Event::RetiredUops, ctx.now, config_.uops_per_op);
  pmu_core.record(is_store ? Event::RetiredStores : Event::RetiredLoads,
                  ctx.now);

  if (config_.instruction_fetch) {
    latency += instruction_fetch(proc, ip, ctx);
  }

  // ---- address translation -------------------------------------------------
  mem::Pte* pte = nullptr;
  mem::PageSize page_size = mem::PageSize::k4K;
  mem::VirtAddr page_va = 0;
  bool dirty_transition = false;

  mem::Tlb::LookupResult hit = core.tlb.lookup(proc.pid(), vaddr);
  if (hit.level != mem::TlbHit::Miss) {
    result.tlb = hit.level;
    if (hit.level == mem::TlbHit::L2) {
      pmu_core.record(Event::DtlbL1Miss, ctx.now);
    }
    pte = hit.entry->pte;
    page_size = hit.size;
    page_va = mem::page_base(vaddr, page_size);
    // D bits are correctness-critical: a store through a clean TLB entry
    // still updates the PTE (PTW assist), TLB hit or not (Section II-B).
    if (is_store && !hit.entry->dirty_cached) {
      hit.entry->dirty_cached = true;
      if (!pte->dirty()) {
        pte->set_dirty(true);
        dirty_transition = true;
        pmu_core.record(Event::PtwDbitSet, ctx.now);
      }
    }
  } else {
    result.tlb = mem::TlbHit::Miss;
    pmu_core.record(Event::DtlbL1Miss, ctx.now);
    pmu_core.record(Event::DtlbWalk, ctx.now);
    mem::WalkResult walk =
        mem::PageTableWalker::walk(proc.page_table(), vaddr, is_store);
    if (walk.status == mem::WalkResult::Status::NotPresent) {
      // First touch: allocate and map, then redo the walk.
      result.page_fault = true;
      pmu_core.record(Event::PageFault, ctx.now);
      latency += config_.page_fault_ns;
      handle_page_fault(proc, vaddr, ctx.arena);
      walk = mem::PageTableWalker::walk(proc.page_table(), vaddr, is_store);
      TMPROF_ASSERT(walk.status == mem::WalkResult::Status::Ok);
    } else if (walk.status == mem::WalkResult::Status::Poisoned) {
      result.protection_fault = true;
      pmu_core.record(Event::ProtectionFault, ctx.now);
      if (fault_hook_) {
        latency += fault_hook_(proc, vaddr, is_store);
      } else {
        TMPROF_ASSERT(badgertrap_ != nullptr);
        latency += badgertrap_->handle_fault(proc.pid(), proc.page_table(),
                                             core.tlb, vaddr, is_store);
      }
      // The handler installed or restored the translation; re-walk the
      // unpoisoned view.
      walk = mem::PageTableWalker::walk(proc.page_table(), vaddr, is_store,
                                        /*honor_poison=*/false);
      TMPROF_ASSERT(walk.status == mem::WalkResult::Status::Ok);
    }
    latency += walk.levels * config_.walk_level_ns;
    if (walk.set_accessed) pmu_core.record(Event::PtwAbitSet, ctx.now);
    if (walk.set_dirty) {
      dirty_transition = true;
      pmu_core.record(Event::PtwDbitSet, ctx.now);
    }
    pte = walk.pte;
    page_size = walk.size;
    page_va = walk.page_va;
    if (!result.protection_fault) {
      core.tlb.fill(proc.pid(), page_va, page_size, pte, pte->dirty());
    }
  }

  // ---- physical access through the cache hierarchy ----------------------
  const mem::PhysAddr paddr =
      (pte->pfn() << mem::kPageShift) + (vaddr - page_va);
  result.paddr = paddr;
  mem::CacheAccess cache = core.caches.access(paddr, is_store, proc.pid());
  result.source = cache.source;
  switch (cache.source) {
    case mem::DataSource::L1:
      latency += config_.l1_hit_ns;
      break;
    case mem::DataSource::L2:
      latency += config_.l2_hit_ns;
      pmu_core.record(Event::L1DMiss, ctx.now);
      break;
    case mem::DataSource::LLC:
      latency += config_.llc_hit_ns;
      pmu_core.record(Event::L1DMiss, ctx.now);
      pmu_core.record(Event::L2Miss, ctx.now);
      pmu_core.record(Event::LlcAccess, ctx.now);
      break;
    default: {
      pmu_core.record(Event::L1DMiss, ctx.now);
      pmu_core.record(Event::L2Miss, ctx.now);
      pmu_core.record(Event::LlcAccess, ctx.now);
      pmu_core.record(Event::LlcMiss, ctx.now);
      const mem::TierId tier = phys_.tier_of(mem::pfn_of(paddr));
      const mem::TierSpec& spec = phys_.tier(tier);
      latency += is_store ? spec.write_latency_ns : spec.read_latency_ns;
      latency += spec.line_transfer_ns;
      proc.note_mem_fill(tier);
      if (tier == 0) {
        result.source = mem::DataSource::MemTier1;
        pmu_core.record(Event::MemReadTier1, ctx.now);
      } else {
        result.source = mem::DataSource::MemTier2;
        pmu_core.record(Event::MemReadTier2, ctx.now);
      }
      if (cache.prefetch_issued) pmu_core.record(Event::PrefetchFill, ctx.now);
      break;
    }
  }

  ctx.now += latency;
  result.latency_ns = latency;
  ctx.ops.inc();
  ctx.latency.observe(latency);

  // ---- publish hardware events to monitors ------------------------------
  monitors::MemOpEvent event;
  event.time = ctx.now;
  event.core = ctx.core_idx;
  event.pid = proc.pid();
  event.ip = ip;
  event.vaddr = vaddr;
  event.paddr = paddr;
  event.is_store = is_store;
  event.source = result.source;
  event.tlb = result.tlb;
  event.page_size = page_size;
  for (monitors::AccessObserver* obs : *ctx.direct) {
    obs->on_retire(ctx.core_idx, config_.uops_per_op, ctx.now);
    obs->on_mem_op(event);
    if (dirty_transition) obs->on_dirty_set(event);
  }
  if (ctx.log != nullptr) ctx.log->emplace_back(event, dirty_transition);
  return result;
}

std::uint64_t System::shootdown(mem::Pid pid, mem::VirtAddr page_va,
                                mem::PageSize size) {
  for (Core& core : cores_) {
    core.tlb.invalidate_page(pid, page_va, size);
  }
  const std::uint64_t ipis = config_.cores - 1;
  pmu_.core(0).record(Event::TlbShootdownIpi, now_, ipis);
  shootdown_ipis_.add(ipis);
  return ipis;
}

bool System::migrate_page(mem::Pid pid, mem::VirtAddr page_va,
                          mem::TierId target) {
  Process& proc = process(pid);
  mem::PteRef ref = proc.page_table().resolve(page_va);
  TMPROF_EXPECTS(ref && ref.page_va == page_va);
  const mem::Pfn old_pfn = ref.pte->pfn();
  if (phys_.tier_of(old_pfn) == target) return true;  // already there
  const std::uint32_t arena =
      phys_.arenas() > 1
          ? static_cast<std::uint32_t>(pid) % phys_.arenas()
          : 0;
  const auto new_pfn = phys_.alloc_exact(target, pid, page_va, ref.size, arena);
  if (!new_pfn) return false;
  ref.pte->set_pfn(*new_pfn);
  phys_.free(old_pfn);
  shootdown(pid, page_va, ref.size);
  pmu_.core(0).record(Event::PageMigration, now_);
  migrations_.inc();
  return true;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void System::save_state(util::ckpt::Writer& w) {
  w.put_u64(now_);
  w.put_u64(total_ops_);
  w.put_u64(schedule_cursor_);
  w.put_u8(first_touch_tier_);
  w.put_u64(next_pid_);
  w.put_u32(static_cast<std::uint32_t>(processes_.size()));
  for (const auto& proc : processes_) {
    w.put_u64(proc->pid());
    proc->save_state(w);
  }
  phys_.save_state(w);
  pmu_.save_state(w);
  llc_.save_state(w);
  w.put_u32(static_cast<std::uint32_t>(llc_slices_.size()));
  for (const auto& slice : llc_slices_) slice->save_state(w);
  w.put_u32(static_cast<std::uint32_t>(cores_.size()));
  for (const Core& core : cores_) {
    core.caches.save_state(w);
    core.tlb.save_state(w);
  }
}

void System::load_state(util::ckpt::Reader& r) {
  now_ = r.get_u64();
  total_ops_ = r.get_u64();
  schedule_cursor_ = r.get_u64();
  first_touch_tier_ = static_cast<mem::TierId>(r.get_u8());
  const auto next_pid = static_cast<mem::Pid>(r.get_u64());
  const std::uint32_t n_procs = r.get_u32();
  if (n_procs != processes_.size() || next_pid != next_pid_) {
    throw util::ckpt::CkptError(
        "system", "process set mismatch: checkpoint has " +
                      std::to_string(n_procs) + " processes (next pid " +
                      std::to_string(next_pid) + "), system has " +
                      std::to_string(processes_.size()));
  }
  for (const auto& proc : processes_) {
    const auto pid = static_cast<mem::Pid>(r.get_u64());
    if (pid != proc->pid()) {
      throw util::ckpt::CkptError(
          "system", "process order mismatch: expected pid " +
                        std::to_string(proc->pid()) + ", checkpoint has " +
                        std::to_string(pid));
    }
    proc->load_state(r);
  }
  phys_.load_state(r);
  pmu_.load_state(r);
  llc_.load_state(r);
  const std::uint32_t n_slices = r.get_u32();
  if (n_slices != llc_slices_.size()) {
    throw util::ckpt::CkptError("system", "LLC slice count mismatch");
  }
  for (const auto& slice : llc_slices_) slice->load_state(r);
  // Page tables are rebuilt above, so TLB entries can rebind their cached
  // PTE pointers now.
  const mem::TlbArray::PteResolver resolver =
      [this](mem::Pid pid, mem::Vpn vpn, mem::PageSize size) -> mem::Pte* {
    const unsigned shift =
        size == mem::PageSize::k4K ? mem::kPageShift : mem::kHugePageShift;
    const mem::VirtAddr va = vpn << shift;
    for (const auto& proc : processes_) {
      if (proc->pid() != pid) continue;
      const mem::PteRef ref = proc->page_table().resolve(va);
      if (!ref || ref.size != size || ref.page_va != va) return nullptr;
      return ref.pte;
    }
    return nullptr;
  };
  const std::uint32_t n_cores = r.get_u32();
  if (n_cores != cores_.size()) {
    throw util::ckpt::CkptError("system", "core count mismatch");
  }
  for (Core& core : cores_) {
    core.caches.load_state(r);
    core.tlb.load_state(r, resolver);
  }
}

}  // namespace tmprof::sim
