#pragma once
/// \file config.hpp
/// System configuration. Defaults model the paper's testbed: an AMD Ryzen
/// 3600X (6 cores @ 3.8 GHz, 32 MiB LLC) with a two-tier main memory whose
/// slow tier has NVM-class latency.

#include <cstdint>
#include <vector>

#include "mem/tiers.hpp"
#include "mem/tlb.hpp"
#include "util/time.hpp"

namespace tmprof::sim {

struct SimConfig {
  std::uint32_t cores = 6;

  // Cache geometry (per core L1/L2, shared LLC).
  std::uint64_t l1_bytes = 32ULL << 10;
  std::uint32_t l1_ways = 8;
  std::uint64_t l2_bytes = 512ULL << 10;
  std::uint32_t l2_ways = 8;
  std::uint64_t llc_bytes = 32ULL << 20;
  std::uint32_t llc_ways = 16;
  bool prefetch = true;

  // TLB geometry (see Tlb::make_default for the Zen-2-like shape).
  mem::TlbLevelConfig l1_tlb{16, 4, 8, 4};
  mem::TlbLevelConfig l2_tlb{256, 8, 32, 4};

  // Tiered memory. Frame counts are set per experiment (the paper's 4 GiB +
  // 60 GiB emulation config scales to 64 MiB + 960 MiB at the simulator's
  // 1/64 footprint scale); the latencies are calibrated to DRAM vs.
  // Optane-class media.
  std::uint64_t tier1_frames = (64ULL << 20) >> 12;    // 64 MiB fast
  std::uint64_t tier2_frames = (960ULL << 20) >> 12;   // 960 MiB slow
  util::SimNs tier1_read_ns = 80;
  util::SimNs tier1_write_ns = 80;
  util::SimNs tier2_read_ns = 300;
  util::SimNs tier2_write_ns = 600;
  /// Optional third tier (e.g., DRAM + CXL-attached + NVM). 0 disables it.
  /// Deprecated alongside the tier1_*/tier2_* fields above: new code should
  /// describe the machine with `tiers` below; these remain as a
  /// compatibility shim for existing two/three-tier experiments.
  std::uint64_t tier3_frames = 0;
  util::SimNs tier3_read_ns = 900;
  util::SimNs tier3_write_ns = 1800;

  /// Explicit tier chain, fastest first (DRAM + CXL + NVM + ...). When
  /// non-empty this takes precedence over the tierN_* shim fields and may
  /// describe up to mem::kMaxTiers tiers with per-tier latency/bandwidth.
  /// Empty (default) preserves the legacy two/three-tier construction
  /// bitwise. See sim::tier_specs() and docs/TOPOLOGY.md.
  std::vector<mem::TierSpec> tiers;

  // Access-latency model for cache hits.
  util::SimNs l1_hit_ns = 1;
  util::SimNs l2_hit_ns = 3;
  util::SimNs llc_hit_ns = 10;
  /// Per-level cost of a hardware page walk (each level is a memory/cache
  /// access by the walker).
  util::SimNs walk_level_ns = 15;
  /// Kernel cost of a first-touch (not-present) page fault.
  util::SimNs page_fault_ns = 1500;
  /// Fixed pipeline cost per retired op.
  util::SimNs base_op_ns = 1;

  /// Micro-ops retired per simulated memory op (the surrounding non-memory
  /// instructions); affects IBS tag-to-sample conversion.
  std::uint64_t uops_per_op = 4;

  /// Model the instruction-fetch translation path: each op fetches from a
  /// per-process code region through the (shared) TLB, so code pages set
  /// A bits and ITLB walks are counted — the "instruction TLB events" side
  /// of the paper's Fig. 2. Off by default (profiling-of-data studies).
  bool instruction_fetch = false;
  std::uint64_t code_bytes_per_process = 64ULL << 10;

  std::uint32_t pmu_registers = 6;

  /// Build the deterministic *sharded* access engine: per-core LLC slices,
  /// per-core physical-memory arenas, and System::step_parallel() support.
  /// Results are bitwise-reproducible for a given seed regardless of how
  /// many OS threads execute the shards, but differ from the legacy shared-
  /// LLC serial engine (false), which existing experiments keep by default.
  bool sharded_engine = false;
};

}  // namespace tmprof::sim
