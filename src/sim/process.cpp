#include "sim/process.hpp"

#include "util/ckpt.hpp"

#include "util/assert.hpp"

namespace tmprof::sim {

Process::Process(mem::Pid pid, workloads::WorkloadPtr workload, double weight)
    : pid_(pid), workload_(std::move(workload)), weight_(weight) {
  TMPROF_EXPECTS(workload_ != nullptr);
  TMPROF_EXPECTS(weight > 0.0);
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void Process::save_state(util::ckpt::Writer& w) {
  table_.save_state(w);
  workload_->save_state(w);
  w.put_u64(ops_issued_);
  w.put_u64(rss_pages_);
  w.put_u64(mem_fills_);
  for (const std::uint64_t fills : tier_fills_) w.put_u64(fills);
}

void Process::load_state(util::ckpt::Reader& r) {
  table_.load_state(r);
  workload_->load_state(r);
  ops_issued_ = r.get_u64();
  rss_pages_ = r.get_u64();
  mem_fills_ = r.get_u64();
  for (std::uint64_t& fills : tier_fills_) fills = r.get_u64();
}

}  // namespace tmprof::sim
