#include "sim/process.hpp"

#include "util/assert.hpp"

namespace tmprof::sim {

Process::Process(mem::Pid pid, workloads::WorkloadPtr workload, double weight)
    : pid_(pid), workload_(std::move(workload)), weight_(weight) {
  TMPROF_EXPECTS(workload_ != nullptr);
  TMPROF_EXPECTS(weight > 0.0);
}

}  // namespace tmprof::sim
