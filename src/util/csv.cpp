#include "util/csv.hpp"

#include <stdexcept>

namespace tmprof::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += "\"\"";
    else quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) out_ << ',';
    out_ << escape(cell);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace tmprof::util
