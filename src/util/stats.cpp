#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace tmprof::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

template <typename T>
double percentile_impl(std::span<const T> xs, double q) {
  TMPROF_EXPECTS(!xs.empty());
  TMPROF_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<T> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

}  // namespace

double percentile(std::span<const double> xs, double q) {
  return percentile_impl(xs, q);
}

double percentile(std::span<const std::uint64_t> xs, double q) {
  return percentile_impl(xs, q);
}

double geomean(std::span<const double> xs) {
  TMPROF_EXPECTS(!xs.empty());
  double log_sum = 0.0;
  for (double x : xs) {
    TMPROF_EXPECTS(x > 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace tmprof::util
