#include "util/histogram.hpp"

#include <algorithm>
#include <ostream>

#include "util/assert.hpp"

namespace tmprof::util {

Histogram::Histogram(std::uint64_t lo, std::uint64_t hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  TMPROF_EXPECTS(hi > lo);
  TMPROF_EXPECTS(buckets > 0);
  width_ = (hi - lo + buckets - 1) / buckets;
  TMPROF_ENSURES(width_ > 0);
}

void Histogram::add(std::uint64_t value, std::uint64_t weight) {
  total_ += weight;
  sum_ += value * weight;
  if (value < lo_) {
    underflow_ += weight;
    return;
  }
  if (value >= hi_) {
    overflow_ += weight;
    return;
  }
  const std::size_t bucket =
      std::min<std::size_t>((value - lo_) / width_, counts_.size() - 1);
  counts_[bucket] += weight;
}

std::uint64_t Histogram::count(std::size_t bucket) const {
  TMPROF_EXPECTS(bucket < counts_.size());
  return counts_[bucket];
}

std::uint64_t Histogram::bucket_lo(std::size_t bucket) const {
  TMPROF_EXPECTS(bucket < counts_.size());
  return lo_ + bucket * width_;
}

bool Histogram::same_shape(const Histogram& other) const noexcept {
  return lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::merge(const Histogram& other) {
  TMPROF_EXPECTS(same_shape(other));
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

void Histogram::reset() noexcept {
  total_ = 0;
  underflow_ = 0;
  overflow_ = 0;
  sum_ = 0;
  std::fill(counts_.begin(), counts_.end(), 0);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return static_cast<double>(lo_);
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 0-based: q spans [first, last].
  const double target = q * static_cast<double>(total_ - 1);
  const auto rank = static_cast<std::uint64_t>(target);
  std::uint64_t seen = underflow_;
  if (rank < seen) return static_cast<double>(lo_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t c = counts_[b];
    if (c != 0 && rank < seen + c) {
      // Interpolate inside the bucket by the rank's position in it.
      const double frac = (static_cast<double>(rank - seen) + 0.5) /
                          static_cast<double>(c);
      const std::uint64_t bucket_hi =
          std::min(hi_, lo_ + (b + 1) * width_);
      return static_cast<double>(bucket_lo(b)) +
             frac * static_cast<double>(bucket_hi - bucket_lo(b));
    }
    seen += c;
  }
  return static_cast<double>(hi_);  // remaining mass is overflow
}

Heatmap::Heatmap(std::uint64_t time_hi, std::size_t time_bins,
                 std::uint64_t addr_hi, std::size_t addr_bins)
    : time_hi_(time_hi),
      addr_hi_(addr_hi),
      time_bins_(time_bins),
      addr_bins_(addr_bins),
      cells_(time_bins * addr_bins, 0) {
  TMPROF_EXPECTS(time_hi > 0 && addr_hi > 0);
  TMPROF_EXPECTS(time_bins > 0 && addr_bins > 0);
}

void Heatmap::add(std::uint64_t time, std::uint64_t addr,
                  std::uint64_t weight) {
  if (time >= time_hi_ || addr >= addr_hi_) return;  // clipped, not an error
  const auto t = static_cast<std::size_t>(
      static_cast<unsigned __int128>(time) * time_bins_ / time_hi_);
  const auto a = static_cast<std::size_t>(
      static_cast<unsigned __int128>(addr) * addr_bins_ / addr_hi_);
  auto& cell = cells_[index(t, a)];
  cell += weight;
  total_ += weight;
  max_cell_ = std::max(max_cell_, cell);
}

std::uint64_t Heatmap::at(std::size_t time_bin, std::size_t addr_bin) const {
  TMPROF_EXPECTS(time_bin < time_bins_ && addr_bin < addr_bins_);
  return cells_[index(time_bin, addr_bin)];
}

std::string Heatmap::render_ascii() const {
  static constexpr char kRamp[] = " .:-=+*#%@";
  static constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // top index
  std::string out;
  out.reserve((time_bins_ + 1) * addr_bins_);
  for (std::size_t a = addr_bins_; a-- > 0;) {  // high addresses on top
    for (std::size_t t = 0; t < time_bins_; ++t) {
      const std::uint64_t c = cells_[index(t, a)];
      std::size_t level = 0;
      if (c > 0 && max_cell_ > 0) {
        level = 1 + static_cast<std::size_t>(
                        static_cast<unsigned __int128>(c - 1) * (kLevels - 1) /
                        max_cell_);
        level = std::min(level, kLevels);
      }
      out.push_back(kRamp[level]);
    }
    out.push_back('\n');
  }
  return out;
}

void Heatmap::write_csv(std::ostream& os) const {
  os << "time_bin,addr_bin,count\n";
  for (std::size_t a = 0; a < addr_bins_; ++a) {
    for (std::size_t t = 0; t < time_bins_; ++t) {
      const std::uint64_t c = cells_[index(t, a)];
      if (c != 0) os << t << ',' << a << ',' << c << '\n';
    }
  }
}

}  // namespace tmprof::util
