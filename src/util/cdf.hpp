#pragma once
/// \file cdf.hpp
/// Empirical CDFs over per-page access counts (paper Fig. 5).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace tmprof::util {

/// Empirical cumulative distribution built from a sample of values.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<std::uint64_t> samples);

  /// Fraction of samples <= value, in [0, 1].
  [[nodiscard]] double at(std::uint64_t value) const;

  /// Smallest value v such that at(v) >= q.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const;

  /// Evenly spaced (value, cumulative-fraction) rows for plotting; `points`
  /// rows spanning quantiles (0, 1].
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> curve(
      std::size_t points) const;

  /// CSV rows: value,cum_fraction.
  void write_csv(std::ostream& os, std::size_t points) const;

 private:
  std::vector<std::uint64_t> sorted_;
};

}  // namespace tmprof::util
