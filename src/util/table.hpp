#pragma once
/// \file table.hpp
/// Aligned plain-text tables; benches print paper tables through this.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tmprof::util {

/// Column-aligned text table with a header row and separator.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  /// Helpers for numeric cells.
  static std::string num(std::uint64_t v);
  static std::string fixed(double v, int digits);
  static std::string percent(double ratio, int digits = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tmprof::util
