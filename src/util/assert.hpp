#pragma once
/// \file assert.hpp
/// Always-on invariant checking used throughout the library.
///
/// Simulator correctness matters more than the last few percent of speed, so
/// these checks stay enabled in release builds. They throw (rather than
/// abort) so tests can assert on violated preconditions.

#include <source_location>
#include <stdexcept>
#include <string>

namespace tmprof::util {

/// Error thrown when a TMPROF_ASSERT / Expects / Ensures check fails.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void assertion_failure(
    const char* kind, const char* expr,
    const std::source_location loc = std::source_location::current()) {
  throw AssertionError(std::string(kind) + " failed: `" + expr + "` at " +
                       loc.file_name() + ":" + std::to_string(loc.line()));
}

}  // namespace tmprof::util

/// Check an invariant that must hold at this program point.
#define TMPROF_ASSERT(expr)                                       \
  do {                                                            \
    if (!(expr)) [[unlikely]] {                                   \
      ::tmprof::util::assertion_failure("assertion", #expr);      \
    }                                                             \
  } while (false)

/// Precondition check on function entry (GSL-style).
#define TMPROF_EXPECTS(expr)                                      \
  do {                                                            \
    if (!(expr)) [[unlikely]] {                                   \
      ::tmprof::util::assertion_failure("precondition", #expr);   \
    }                                                             \
  } while (false)

/// Postcondition check before returning (GSL-style).
#define TMPROF_ENSURES(expr)                                      \
  do {                                                            \
    if (!(expr)) [[unlikely]] {                                   \
      ::tmprof::util::assertion_failure("postcondition", #expr);  \
    }                                                             \
  } while (false)
