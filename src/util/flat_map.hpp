#pragma once
/// \file flat_map.hpp
/// Open-addressing hash containers for the epoch hot path.
///
/// `FlatHashMap` is a power-of-two, linear-probing, tombstone-free hash map
/// tuned for the counter-accumulation pattern the profiler hammers every
/// epoch: insert-or-increment millions of times, iterate once at the epoch
/// barrier, `clear()` and go again. Compared to `std::unordered_map` it
/// stores slots in one contiguous array (no per-node allocation, no pointer
/// chasing on probe), retains capacity across `clear()` so steady-state
/// epochs allocate nothing, and offers `fold_sorted()` — ascending-key
/// iteration for checkpoint serialization and other byte-stable outputs.
///
/// Deliberate non-features: no per-key `erase()` (tombstone-free probing
/// relies on it; every hot-path consumer only ever clears wholesale), and
/// plain iteration order is unspecified (use `fold_sorted` when order
/// matters). Max load factor is 1/2.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

namespace tmprof::util {

/// SplitMix64 finalizer — full-avalanche mix for raw integer keys (e.g.
/// physical frame numbers). Identity hashes would make sequential frames
/// probe into long runs.
struct U64Hash {
  std::size_t operator()(std::uint64_t x) const noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

template <typename Key, typename Value, typename Hash>
class FlatHashMap {
 public:
  using key_type = Key;
  using mapped_type = Value;
  using value_type = std::pair<Key, Value>;
  using size_type = std::size_t;

 private:
  struct Slot {
    value_type kv{};
    bool used = false;
  };

  template <bool Const>
  class Iter {
    using slot_ptr = std::conditional_t<Const, const Slot*, Slot*>;

   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = FlatHashMap::value_type;
    using difference_type = std::ptrdiff_t;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(slot_ptr cur, slot_ptr end) : cur_(cur), end_(end) { skip(); }
    /// const_iterator is constructible from iterator, as usual.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : cur_(other.cur_), end_(other.end_) {}

    reference operator*() const { return cur_->kv; }
    pointer operator->() const { return &cur_->kv; }
    Iter& operator++() {
      ++cur_;
      skip();
      return *this;
    }
    Iter operator++(int) {
      Iter tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.cur_ == b.cur_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.cur_ != b.cur_;
    }

   private:
    friend class FlatHashMap;
    friend class Iter<true>;
    void skip() {
      while (cur_ != end_ && !cur_->used) ++cur_;
    }
    slot_ptr cur_ = nullptr;
    slot_ptr end_ = nullptr;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;

  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Number of slots currently allocated (power of two, or 0).
  [[nodiscard]] size_type capacity() const noexcept { return slots_.size(); }
  /// Bytes of slot storage held (exact-vs-sketch memory accounting).
  [[nodiscard]] size_type memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

  /// Drop all entries but keep the slot array — the whole point of the
  /// swap-and-clear epoch protocol. O(capacity).
  void clear() noexcept {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
  }

  /// Ensure `n` entries fit without growth (allocates for 1/2 load factor).
  void reserve(size_type n) {
    size_type want = min_capacity_for(n);
    if (want > slots_.size()) rehash(want);
  }

  void swap(FlatHashMap& other) noexcept {
    slots_.swap(other.slots_);
    std::swap(size_, other.size_);
    std::swap(mask_, other.mask_);
  }
  friend void swap(FlatHashMap& a, FlatHashMap& b) noexcept { a.swap(b); }

  iterator begin() noexcept {
    return iterator(slots_.data(), slots_.data() + slots_.size());
  }
  iterator end() noexcept {
    Slot* e = slots_.data() + slots_.size();
    return iterator(e, e);
  }
  const_iterator begin() const noexcept {
    return const_iterator(slots_.data(), slots_.data() + slots_.size());
  }
  const_iterator end() const noexcept {
    const Slot* e = slots_.data() + slots_.size();
    return const_iterator(e, e);
  }
  const_iterator cbegin() const noexcept { return begin(); }
  const_iterator cend() const noexcept { return end(); }

  /// Insert-or-find; value-initializes on first touch (counters start at 0
  /// even though cleared slots retain stale values).
  Value& operator[](const Key& key) {
    if ((size_ + 1) * 2 > slots_.size()) rehash(grow_target());
    Slot& s = probe(key);
    if (!s.used) {
      s.used = true;
      s.kv.first = key;
      s.kv.second = Value{};
      ++size_;
    }
    return s.kv.second;
  }

  /// Insert if absent. Returns (pointer to value, inserted?).
  std::pair<Value*, bool> try_emplace(const Key& key, Value value = Value{}) {
    if ((size_ + 1) * 2 > slots_.size()) rehash(grow_target());
    Slot& s = probe(key);
    if (s.used) return {&s.kv.second, false};
    s.used = true;
    s.kv.first = key;
    s.kv.second = std::move(value);
    ++size_;
    return {&s.kv.second, true};
  }

  iterator find(const Key& key) noexcept {
    Slot* s = find_slot(key);
    return s ? iterator(s, slots_.data() + slots_.size()) : end();
  }
  const_iterator find(const Key& key) const noexcept {
    const Slot* s = find_slot(key);
    return s ? const_iterator(s, slots_.data() + slots_.size()) : end();
  }
  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return find_slot(key) != nullptr;
  }
  [[nodiscard]] size_type count(const Key& key) const noexcept {
    return contains(key) ? 1 : 0;
  }

  Value& at(const Key& key) {
    Slot* s = find_slot(key);
    if (!s) throw std::out_of_range("FlatHashMap::at: key not found");
    return s->kv.second;
  }
  const Value& at(const Key& key) const {
    const Slot* s = find_slot(key);
    if (!s) throw std::out_of_range("FlatHashMap::at: key not found");
    return s->kv.second;
  }

  /// Order-independent equality (mirrors std::unordered_map semantics).
  friend bool operator==(const FlatHashMap& a, const FlatHashMap& b) {
    if (a.size_ != b.size_) return false;
    for (const Slot& s : a.slots_) {
      if (!s.used) continue;
      const Slot* o = b.find_slot(s.kv.first);
      if (!o || !(o->kv.second == s.kv.second)) return false;
    }
    return true;
  }
  friend bool operator!=(const FlatHashMap& a, const FlatHashMap& b) {
    return !(a == b);
  }

  /// Visit every entry in ascending key order: `fn(key, value)`. This is
  /// the deterministic iteration used for checkpoint bytes and barrier
  /// merges; it allocates a scratch index, so keep it off per-op paths.
  template <typename Fn>
  void fold_sorted(Fn&& fn) const {
    std::vector<const Slot*> order;
    order.reserve(size_);
    for (const Slot& s : slots_) {
      if (s.used) order.push_back(&s);
    }
    std::sort(order.begin(), order.end(), [](const Slot* x, const Slot* y) {
      return x->kv.first < y->kv.first;
    });
    for (const Slot* s : order) fn(s->kv.first, s->kv.second);
  }

 private:
  static size_type next_pow2(size_type n) noexcept {
    size_type p = 1;
    while (p < n) p <<= 1;
    return p;
  }
  static size_type min_capacity_for(size_type n) noexcept {
    if (n == 0) return 0;
    return next_pow2(std::max<size_type>(16, n * 2));
  }
  size_type grow_target() const noexcept {
    return slots_.empty() ? 16 : slots_.size() * 2;
  }

  /// First slot that holds `key` or the unused slot where it belongs.
  /// Requires a non-empty table with at least one free slot.
  Slot& probe(const Key& key) noexcept {
    size_type i = hash_(key) & mask_;
    while (slots_[i].used && !(slots_[i].kv.first == key)) {
      i = (i + 1) & mask_;
    }
    return slots_[i];
  }
  Slot* find_slot(const Key& key) noexcept {
    return const_cast<Slot*>(std::as_const(*this).find_slot(key));
  }
  const Slot* find_slot(const Key& key) const noexcept {
    if (slots_.empty()) return nullptr;
    size_type i = hash_(key) & mask_;
    while (slots_[i].used) {
      if (slots_[i].kv.first == key) return &slots_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  void rehash(size_type new_cap) {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(new_cap);
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      size_type i = hash_(s.kv.first) & mask_;
      while (slots_[i].used) i = (i + 1) & mask_;
      slots_[i].kv = std::move(s.kv);
      slots_[i].used = true;
    }
  }

  std::vector<Slot> slots_;
  size_type size_ = 0;
  size_type mask_ = 0;
  Hash hash_;
};

/// Hash set with the same layout and guarantees as FlatHashMap. Iteration
/// yields `const Key&`; `fold_sorted(fn)` visits keys ascending.
template <typename Key, typename Hash>
class FlatHashSet {
  /// Empty payload; a dedicated type keeps sizeof(Slot) as small as the
  /// pair packing allows and makes the intent explicit.
  struct Unit {
    friend bool operator==(const Unit&, const Unit&) { return true; }
  };
  using Map = FlatHashMap<Key, Unit, Hash>;

 public:
  using key_type = Key;
  using size_type = std::size_t;

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Key;
    using difference_type = std::ptrdiff_t;
    using reference = const Key&;
    using pointer = const Key*;

    const_iterator() = default;
    explicit const_iterator(typename Map::const_iterator it) : it_(it) {}
    reference operator*() const { return it_->first; }
    pointer operator->() const { return &it_->first; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    typename Map::const_iterator it_;
  };
  using iterator = const_iterator;

  [[nodiscard]] size_type size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] size_type capacity() const noexcept { return map_.capacity(); }
  [[nodiscard]] size_type memory_bytes() const noexcept {
    return map_.memory_bytes();
  }
  void clear() noexcept { map_.clear(); }
  void reserve(size_type n) { map_.reserve(n); }
  void swap(FlatHashSet& other) noexcept { map_.swap(other.map_); }
  friend void swap(FlatHashSet& a, FlatHashSet& b) noexcept { a.swap(b); }

  /// Returns true when the key was newly inserted.
  bool insert(const Key& key) { return map_.try_emplace(key).second; }
  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return map_.contains(key);
  }
  [[nodiscard]] size_type count(const Key& key) const noexcept {
    return map_.count(key);
  }

  const_iterator begin() const noexcept {
    return const_iterator(map_.begin());
  }
  const_iterator end() const noexcept { return const_iterator(map_.end()); }

  friend bool operator==(const FlatHashSet& a, const FlatHashSet& b) {
    return a.map_ == b.map_;
  }
  friend bool operator!=(const FlatHashSet& a, const FlatHashSet& b) {
    return !(a == b);
  }

  /// Visit every key in ascending order.
  template <typename Fn>
  void fold_sorted(Fn&& fn) const {
    map_.fold_sorted([&fn](const Key& key, const Unit&) { fn(key); });
  }

 private:
  Map map_;
};

}  // namespace tmprof::util
