#pragma once
/// \file fault.hpp
/// Deterministic, seeded fault injection for the robustness layer.
///
/// Real tiered-memory stacks fail constantly in small ways: `move_pages()`
/// returns -EBUSY or -ENOMEM, IBS/PEBS ring buffers overflow and drop
/// samples, A-bit walks abort when the mm is contended, and HWPC counters
/// saturate or wrap between daemon reads. The simulator reproduces those
/// failures on demand so the retry/degradation machinery can be tested —
/// without giving up bit-reproducibility.
///
/// Every decision is a *pure function* of (seed, site, key): no shared RNG
/// stream is advanced, so the fault schedule cannot depend on call order,
/// thread count, or which engine (serial or sharded) consulted the site.
/// Callers pass a key built from deterministic simulation state (epoch
/// ordinal, page identity, attempt number) via fault_key().

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::util {

/// Where a fault may be injected. Sites model specific kernel failure
/// modes; docs/ROBUSTNESS.md describes how each layer reacts.
enum class FaultSite : std::uint8_t {
  MigrationBusy = 0,  ///< move_pages() -EBUSY: transient, worth retrying
  MigrationNoMem,     ///< move_pages() -ENOMEM: destination exhausted
  TraceOverflow,      ///< IBS/PEBS ring overflow: the sample is lost
  AbitAbort,          ///< A-bit scan aborted mid-walk
  HwpcWrap,           ///< HWPC counter saturation/wrap between reads
};

inline constexpr std::size_t kFaultSiteCount = 5;

[[nodiscard]] constexpr std::string_view to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::MigrationBusy: return "migration-busy";
    case FaultSite::MigrationNoMem: return "migration-nomem";
    case FaultSite::TraceOverflow: return "trace-overflow";
    case FaultSite::AbitAbort: return "abit-abort";
    case FaultSite::HwpcWrap: return "hwpc-wrap";
  }
  return "?";
}

/// Parse one site name ("migration-busy", ...). Throws std::invalid_argument
/// listing the valid names for anything else.
[[nodiscard]] FaultSite fault_site_from(std::string_view name);

/// Parse a comma-separated site list. Group aliases: "migration" expands to
/// both migration sites, "all" to every site. Throws std::invalid_argument
/// (with the offending token and the valid names) on unknown entries or an
/// empty list.
[[nodiscard]] std::vector<FaultSite> parse_fault_sites(std::string_view list);

[[nodiscard]] constexpr std::array<double, kFaultSiteCount> uniform_site_rates(
    double value) noexcept {
  std::array<double, kFaultSiteCount> rates{};
  for (double& r : rates) r = value;
  return rates;
}

/// Per-site fault probabilities. Aggregate so configs stay brace-friendly.
struct FaultConfig {
  /// Default per-consultation fault probability for every site.
  double rate = 0.0;
  /// Schedule seed — independent of the workload seed so the same run can
  /// be replayed under a different fault schedule (and vice versa).
  std::uint64_t seed = 0xfa17;
  /// Per-site override; negative = inherit `rate`.
  std::array<double, kFaultSiteCount> site_rate = uniform_site_rates(-1.0);

  [[nodiscard]] double rate_of(FaultSite site) const noexcept {
    const double r = site_rate[static_cast<std::size_t>(site)];
    return r < 0.0 ? rate : r;
  }
  [[nodiscard]] bool enabled() const noexcept {
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
      if (rate_of(static_cast<FaultSite>(s)) > 0.0) return true;
    }
    return false;
  }
  /// Keep only `sites` active (they inherit `rate`); all others go to 0.
  void restrict_to(const std::vector<FaultSite>& sites) noexcept {
    site_rate = uniform_site_rates(0.0);
    for (const FaultSite site : sites) {
      site_rate[static_cast<std::size_t>(site)] = -1.0;
    }
  }
};

/// Per-site consultation/injection tallies.
struct FaultStats {
  std::array<std::uint64_t, kFaultSiteCount> consulted{};
  std::array<std::uint64_t, kFaultSiteCount> injected{};

  [[nodiscard]] std::uint64_t injected_at(FaultSite site) const noexcept {
    return injected[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] std::uint64_t total_injected() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t n : injected) total += n;
    return total;
  }
};

/// Mix up to three deterministic identifiers into one fault key.
[[nodiscard]] constexpr std::uint64_t fault_key(std::uint64_t a,
                                                std::uint64_t b = 0,
                                                std::uint64_t c = 0) noexcept {
  std::uint64_t s = a;
  std::uint64_t h = splitmix64(s);
  s ^= b + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= splitmix64(s);
  s ^= c + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= splitmix64(s);
  return h;
}

/// The injector. fire() mutates only the stats tallies; every site in the
/// stack is consulted at the epoch barrier on the driving thread, so plain
/// counters suffice. The decision itself is stateless — see file comment.
class FaultInjector {
 public:
  /// Default-constructed injector is disabled and never fires.
  constexpr FaultInjector() noexcept = default;
  explicit FaultInjector(const FaultConfig& config);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] bool enabled(FaultSite site) const noexcept {
    return enabled_ && config_.rate_of(site) > 0.0;
  }

  /// Consult the site: should this operation fail? Pure in (seed, site,
  /// key); identical across runs, call orders, and thread counts.
  bool fire(FaultSite site, std::uint64_t key) noexcept;

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Checkpoint hooks: only the tallies travel — the decision function is
  /// stateless and the config comes from reconstruction.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  FaultConfig config_{};
  FaultStats stats_{};
  bool enabled_ = false;
};

}  // namespace tmprof::util
