#pragma once
/// \file rng.hpp
/// Deterministic, fast pseudo-random number generation.
///
/// The simulator must be bit-reproducible across runs for the Oracle policy
/// (which needs the *same* access stream the profiled epoch saw), so all
/// randomness flows through explicitly seeded Rng instances — never through
/// global state. xoshiro256** is used for speed; splitmix64 expands seeds.

#include <cstdint>

#include "util/assert.hpp"

namespace tmprof::util {

/// splitmix64 step; used to derive well-mixed state from small seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it composes with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's unbiased multiply-shift method.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    TMPROF_ASSERT(bound > 0);
    // 128-bit multiply keeps the distribution unbiased for all bounds that
    // the simulator uses (page counts, footprints), without a modulo.
    using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent stream (for per-process generators).
  constexpr Rng split() noexcept {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

  /// Raw state access for checkpoint/restore (util/ckpt.hpp): a resumed
  /// run must continue the exact stream the interrupted run was drawing.
  static constexpr std::size_t kStateWords = 4;
  [[nodiscard]] constexpr std::uint64_t state_word(std::size_t i) const noexcept {
    TMPROF_ASSERT(i < kStateWords);
    return state_[i];
  }
  constexpr void set_state_word(std::size_t i, std::uint64_t v) noexcept {
    TMPROF_ASSERT(i < kStateWords);
    state_[i] = v;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace tmprof::util
