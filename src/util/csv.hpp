#pragma once
/// \file csv.hpp
/// Minimal CSV emission for bench outputs consumed by plotting scripts.

#include <fstream>
#include <string>
#include <vector>

namespace tmprof::util {

/// Writes rows to a CSV file; quotes cells containing separators.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream out_;
  std::size_t rows_ = 0;
};

}  // namespace tmprof::util
