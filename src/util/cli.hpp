#pragma once
/// \file cli.hpp
/// Tiny `--key=value` / `--flag` argument parser for benches and examples.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tmprof::util {

/// Parses `--key=value` and bare `--flag` arguments. Positional arguments
/// are collected in order. Unknown keys are allowed (benches share configs).
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  /// Throws std::invalid_argument naming the flag on malformed or negative
  /// input (std::stoull would silently wrap "-3" to a huge value).
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  /// Throws std::invalid_argument naming the flag on malformed input.
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// get_double restricted to [lo, hi]; out-of-range values (e.g. a
  /// negative --fault-rate) throw std::invalid_argument naming the flag.
  [[nodiscard]] double get_checked_double(const std::string& key,
                                          double fallback, double lo,
                                          double hi) const;
  /// Probability flag: a double in [0, 1].
  [[nodiscard]] double get_rate(const std::string& key, double fallback) const {
    return get_checked_double(key, fallback, 0.0, 1.0);
  }
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace tmprof::util
