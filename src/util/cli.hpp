#pragma once
/// \file cli.hpp
/// Tiny `--key=value` / `--flag` argument parser for benches and examples.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tmprof::util {

/// Parses `--key=value` and bare `--flag` arguments. Positional arguments
/// are collected in order. Unknown keys are allowed (benches share configs).
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace tmprof::util
