#pragma once
/// \file ckpt_io.hpp
/// Small serialization helpers layered on util/ckpt.hpp for types the core
/// format deliberately knows nothing about (keeps ckpt.hpp dependency-free).

#include "util/ckpt.hpp"
#include "util/rng.hpp"

namespace tmprof::util::ckpt {

inline void save_rng(Writer& w, const Rng& rng) {
  for (std::size_t i = 0; i < Rng::kStateWords; ++i) {
    w.put_u64(rng.state_word(i));
  }
}

inline void load_rng(Reader& r, Rng& rng) {
  for (std::size_t i = 0; i < Rng::kStateWords; ++i) {
    rng.set_state_word(i, r.get_u64());
  }
}

}  // namespace tmprof::util::ckpt
