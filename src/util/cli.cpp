#include "util/cli.hpp"

#include <stdexcept>

namespace tmprof::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "true";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return options_.count(key) != 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::uint64_t ArgParser::get_u64(const std::string& key,
                                 std::uint64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  // stoull accepts "-3" and wraps it silently; reject it explicitly.
  if (v.empty() || v[0] == '-') {
    throw std::invalid_argument("--" + key +
                                " expects an unsigned integer, got '" + v +
                                "'");
  }
  try {
    std::size_t pos = 0;
    const std::uint64_t parsed = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key +
                                " expects an unsigned integer, got '" + v +
                                "'");
  }
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + key + " expects a number, got '" + v +
                                "'");
  }
}

double ArgParser::get_checked_double(const std::string& key, double fallback,
                                     double lo, double hi) const {
  const double value = get_double(key, fallback);
  if (value < lo || value > hi) {
    throw std::invalid_argument("--" + key + " must be in [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "], got " +
                                std::to_string(value));
  }
  return value;
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("ArgParser: bad boolean for --" + key + ": " + v);
}

}  // namespace tmprof::util
