#include "util/cli.hpp"

#include <stdexcept>

namespace tmprof::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "true";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  return options_.count(key) != 0;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::uint64_t ArgParser::get_u64(const std::string& key,
                                 std::uint64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::stoull(it->second);
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  return std::stod(it->second);
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("ArgParser: bad boolean for --" + key + ": " + v);
}

}  // namespace tmprof::util
