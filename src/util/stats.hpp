#pragma once
/// \file stats.hpp
/// Streaming and batch summary statistics used by benches and the profiler.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tmprof::util {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation). `q` in [0, 1].
/// Sorts a copy; fine for bench-sized data.
[[nodiscard]] double percentile(std::span<const double> xs, double q);
[[nodiscard]] double percentile(std::span<const std::uint64_t> xs, double q);

/// Geometric mean of strictly positive values (speedup summaries).
[[nodiscard]] double geomean(std::span<const double> xs);

}  // namespace tmprof::util
