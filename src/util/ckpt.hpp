#pragma once
/// \file ckpt.hpp
/// Crash-consistent binary checkpoint format (docs/RECOVERY.md).
///
/// Layout: an 8-byte magic ("TMPROFCK"), a u32 format version, then a list
/// of framed sections `[u32 name_len][name][u64 payload_len][payload]
/// [u32 crc32(payload)]`. Every multi-byte integer is little-endian and
/// fixed-width; doubles travel as their raw IEEE-754 bit pattern so a
/// restored run is bit-identical to the uninterrupted one.
///
/// The Reader validates the whole file up front (magic, version, frame
/// bounds, per-section CRC) and every later failure — a missing section, a
/// read past a section's end, trailing unread bytes — throws CkptError
/// carrying the *section name*, so callers can print a diagnostic naming
/// the bad section and fall back to a cold start. Writes are atomic:
/// `save_atomic` streams to `<path>.tmp` and renames over the target, so a
/// kill mid-write never leaves a half-written checkpoint under the real
/// name.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace tmprof::util::ckpt {

inline constexpr char kMagic[8] = {'T', 'M', 'P', 'R', 'O', 'F', 'C', 'K'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

/// Typed checkpoint failure. `section()` names the section being written
/// or read when the error was detected ("<header>" for pre-section
/// failures such as a bad magic or version skew).
class CkptError : public std::runtime_error {
 public:
  CkptError(std::string section, const std::string& message)
      : std::runtime_error("checkpoint section '" + section +
                           "': " + message),
        section_(std::move(section)) {}

  [[nodiscard]] const std::string& section() const noexcept {
    return section_;
  }

 private:
  std::string section_;
};

/// Serializes sections into an in-memory image, then writes it atomically.
class Writer {
 public:
  Writer();

  /// Open a new section. Sections may not nest.
  void begin_section(std::string_view name);
  /// Seal the current section (computes its CRC frame).
  void end_section();

  void put_u8(std::uint8_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// Raw IEEE-754 bits: round-trips NaN payloads and signed zeros exactly.
  void put_f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(bits);
  }
  void put_str(std::string_view s);
  void put_bytes(const void* data, std::size_t size);

  /// Finish the image (seals an open section, if any) and return it.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// Write `image` to `path` via `<path>.tmp` + rename. Throws CkptError
  /// ("<io>") on filesystem failure.
  static void save_atomic(const std::string& path,
                          const std::vector<std::uint8_t>& image);

 private:
  template <class T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buffer_;
  std::size_t section_start_ = 0;  ///< payload offset of the open section
  bool in_section_ = false;
  std::string section_name_;
};

/// Parses and validates a checkpoint image, then serves typed reads.
class Reader {
 public:
  /// Validates magic, version, frame bounds and every section CRC; throws
  /// CkptError naming the offending section (or "<header>") otherwise.
  explicit Reader(std::vector<std::uint8_t> image);

  /// Read and validate `path`. Throws CkptError ("<io>") if unreadable.
  static Reader from_file(const std::string& path);

  [[nodiscard]] bool has_section(std::string_view name) const;
  /// Position at the start of section `name`; throws if absent.
  void enter_section(std::string_view name);
  /// Assert the current section was fully consumed (catches skew between
  /// writer and reader field lists).
  void end_section();

  std::uint8_t get_u8() { return get_le<std::uint8_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  bool get_bool();
  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string get_str();
  void get_bytes(void* out, std::size_t size);

  /// Names of all sections, in file order.
  [[nodiscard]] std::vector<std::string> section_names() const;

 private:
  struct Section {
    std::string name;
    std::size_t offset;  ///< payload start within image_
    std::size_t size;
  };

  template <class T>
  T get_le() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(image_[cursor_ + i]) << (8 * i)));
    }
    cursor_ += sizeof(T);
    return v;
  }

  void require(std::size_t bytes);
  [[nodiscard]] const Section* find(std::string_view name) const;

  std::vector<std::uint8_t> image_;
  std::vector<Section> sections_;
  std::size_t cursor_ = 0;
  std::size_t section_end_ = 0;
  std::string current_;  ///< name of the section being read
};

/// Checkpoint scheduling/retention knobs shared by runner and benches.
struct Options {
  std::uint32_t every = 0;      ///< checkpoint period in epochs; 0 = off
  std::string dir;              ///< directory for periodic checkpoints
  std::string resume_from;      ///< explicit file, or "" (see `resume_latest`)
  bool resume_latest = false;   ///< resume from latest_in(dir) if present
  std::uint32_t keep_last = 3;  ///< retention: newest K checkpoints kept
  std::string basename = "ckpt";

  [[nodiscard]] bool enabled() const noexcept {
    return every != 0 && !dir.empty();
  }
};

/// `<dir>/<basename>-e<epoch>.tmck` — epoch zero-padded so lexicographic
/// and numeric order agree.
[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          const std::string& basename,
                                          std::uint32_t epoch);

/// Highest-epoch checkpoint in `dir` matching `basename`, or "" if none.
[[nodiscard]] std::string latest_in(const std::string& dir,
                                    const std::string& basename);

/// Delete all but the newest `keep_last` checkpoints for `basename`.
void prune(const std::string& dir, const std::string& basename,
           std::uint32_t keep_last);

}  // namespace tmprof::util::ckpt
