#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace tmprof::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TMPROF_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  TMPROF_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << '|' << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::num(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string TextTable::percent(double ratio, int digits) {
  return fixed(ratio * 100.0, digits) + "%";
}

}  // namespace tmprof::util
