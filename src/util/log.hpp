#pragma once
/// \file log.hpp
/// Leveled logging to stderr. Defaults to Warn so benches stay clean;
/// examples raise it to Info for narration.

#include <sstream>
#include <string_view>

namespace tmprof::util {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Global log threshold (process-wide; the simulator is single-threaded per
/// experiment, so plain state is fine).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_write(LogLevel level, std::string_view msg);
}

/// Stream-style one-shot logger: LogLine(LogLevel::Info) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= log_level()) buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};

}  // namespace tmprof::util

#define TMPROF_LOG_DEBUG ::tmprof::util::LogLine(::tmprof::util::LogLevel::Debug)
#define TMPROF_LOG_INFO ::tmprof::util::LogLine(::tmprof::util::LogLevel::Info)
#define TMPROF_LOG_WARN ::tmprof::util::LogLine(::tmprof::util::LogLevel::Warn)
#define TMPROF_LOG_ERROR ::tmprof::util::LogLine(::tmprof::util::LogLevel::Error)
