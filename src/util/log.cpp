#include "util/log.hpp"

#include <iostream>

namespace tmprof::util {

namespace {
LogLevel g_level = LogLevel::Warn;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

namespace detail {
void log_write(LogLevel level, std::string_view msg) {
  std::cerr << "[tmprof:" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

LogLine::~LogLine() {
  if (level_ >= log_level()) detail::log_write(level_, buffer_.str());
}

}  // namespace tmprof::util
