#include "util/fault.hpp"

#include <stdexcept>
#include <string>

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::util {

namespace {

constexpr std::string_view kValidSites =
    "migration-busy, migration-nomem, trace-overflow, abit-abort, hwpc-wrap "
    "(aliases: migration, all)";

}  // namespace

FaultSite fault_site_from(std::string_view name) {
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    const auto site = static_cast<FaultSite>(s);
    if (name == to_string(site)) return site;
  }
  throw std::invalid_argument("unknown fault site '" + std::string(name) +
                              "'; valid sites: " + std::string(kValidSites));
}

std::vector<FaultSite> parse_fault_sites(std::string_view list) {
  std::vector<FaultSite> sites;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string_view::npos) end = list.size();
    const std::string_view token = list.substr(begin, end - begin);
    begin = end + 1;
    if (token.empty()) continue;
    if (token == "all") {
      for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
        sites.push_back(static_cast<FaultSite>(s));
      }
    } else if (token == "migration") {
      sites.push_back(FaultSite::MigrationBusy);
      sites.push_back(FaultSite::MigrationNoMem);
    } else {
      sites.push_back(fault_site_from(token));
    }
  }
  if (sites.empty()) {
    throw std::invalid_argument(
        "empty fault-site list; valid sites: " + std::string(kValidSites));
  }
  return sites;
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config), enabled_(config.enabled()) {
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    const double rate = config_.rate_of(static_cast<FaultSite>(s));
    TMPROF_EXPECTS(rate <= 1.0);
  }
}

bool FaultInjector::fire(FaultSite site, std::uint64_t key) noexcept {
  if (!enabled_) return false;
  const double rate = config_.rate_of(site);
  if (rate <= 0.0) return false;
  const auto idx = static_cast<std::size_t>(site);
  ++stats_.consulted[idx];
  // Stateless decision: two splitmix64 rounds over (seed, site, key). The
  // site stride keeps schedules of different sites uncorrelated even for
  // identical keys.
  std::uint64_t s = config_.seed +
                    (static_cast<std::uint64_t>(site) + 1) *
                        0x9e3779b97f4a7c15ULL;
  s ^= key * 0xbf58476d1ce4e5b9ULL;
  (void)splitmix64(s);
  const double u =
      static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  if (u < rate) {
    ++stats_.injected[idx];
    return true;
  }
  return false;
}

void FaultInjector::save_state(ckpt::Writer& w) const {
  for (const std::uint64_t n : stats_.consulted) w.put_u64(n);
  for (const std::uint64_t n : stats_.injected) w.put_u64(n);
}

void FaultInjector::load_state(ckpt::Reader& r) {
  for (std::uint64_t& n : stats_.consulted) n = r.get_u64();
  for (std::uint64_t& n : stats_.injected) n = r.get_u64();
}

}  // namespace tmprof::util
