#pragma once
/// \file zipf.hpp
/// Zipfian sampling for skewed workload generators (Data-Caching,
/// Web-Serving, Graph-Analytics degree distributions).

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace tmprof::util {

/// Samples ranks in [0, n) with probability proportional to 1/(rank+1)^theta.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which needs
/// O(1) state and O(1) expected time per draw — important because workload
/// generators draw one rank per simulated memory access.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double theta);

  std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

  /// Probability mass of a given rank (for tests and analytical baselines).
  [[nodiscard]] double pmf(std::uint64_t rank) const;

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
  double harmonic_;  // generalized harmonic number H_{n,theta}, for pmf()
};

/// A hot/cold mixture: a fraction `hot_weight` of draws land uniformly in the
/// first `hot_items`, the rest land uniformly in the remaining items. Used by
/// workloads whose skew the paper describes as a small hot set plus a long
/// cold tail (Web-Serving).
class HotColdDistribution {
 public:
  HotColdDistribution(std::uint64_t items, std::uint64_t hot_items,
                      double hot_weight);

  std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return items_; }
  [[nodiscard]] std::uint64_t hot_items() const noexcept { return hot_items_; }

 private:
  std::uint64_t items_;
  std::uint64_t hot_items_;
  double hot_weight_;
};

}  // namespace tmprof::util
