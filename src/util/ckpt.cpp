#include "util/ckpt.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>

#include "util/assert.hpp"

namespace tmprof::util::ckpt {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xedb88320U ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t);
constexpr const char* kHeaderSection = "<header>";
constexpr const char* kIoSection = "<io>";

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffU;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrcTable[(c ^ bytes[i]) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

// ---------------------------------------------------------------------------
// Writer

Writer::Writer() {
  buffer_.reserve(4096);
  for (const char c : kMagic) buffer_.push_back(static_cast<std::uint8_t>(c));
  put_le(kFormatVersion);
}

void Writer::begin_section(std::string_view name) {
  TMPROF_EXPECTS(!in_section_);
  TMPROF_EXPECTS(!name.empty());
  section_name_.assign(name);
  put_le(static_cast<std::uint32_t>(name.size()));
  buffer_.insert(buffer_.end(), name.begin(), name.end());
  // Payload length back-patched in end_section(); reserve the slot now.
  put_le(static_cast<std::uint64_t>(0));
  section_start_ = buffer_.size();
  in_section_ = true;
}

void Writer::end_section() {
  TMPROF_EXPECTS(in_section_);
  const std::size_t payload = buffer_.size() - section_start_;
  const std::size_t len_slot = section_start_ - sizeof(std::uint64_t);
  for (std::size_t i = 0; i < sizeof(std::uint64_t); ++i) {
    buffer_[len_slot + i] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(payload) >>
                                  (8 * i));
  }
  put_le(crc32(buffer_.data() + section_start_, payload));
  in_section_ = false;
}

void Writer::put_str(std::string_view s) {
  put_le(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::put_bytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

std::vector<std::uint8_t> Writer::finish() {
  if (in_section_) end_section();
  return std::move(buffer_);
}

void Writer::save_atomic(const std::string& path,
                         const std::vector<std::uint8_t>& image) {
  const std::string tmp = path + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      throw CkptError(kIoSection, "cannot open '" + tmp + "' for writing");
    }
    const std::size_t written =
        image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != image.size() || !flushed) {
      std::remove(tmp.c_str());
      throw CkptError(kIoSection, "short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw CkptError(kIoSection,
                    "rename '" + tmp + "' -> '" + path + "': " + ec.message());
  }
}

// ---------------------------------------------------------------------------
// Reader

Reader::Reader(std::vector<std::uint8_t> image) : image_(std::move(image)) {
  current_ = kHeaderSection;
  if (image_.size() < kHeaderSize) {
    throw CkptError(kHeaderSection, "file too small for header (" +
                                        std::to_string(image_.size()) +
                                        " bytes)");
  }
  if (std::memcmp(image_.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CkptError(kHeaderSection, "bad magic (not a tmprof checkpoint)");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, image_.data() + sizeof(kMagic), sizeof(version));
  if (version != kFormatVersion) {
    throw CkptError(kHeaderSection,
                    "format version " + std::to_string(version) +
                        " != supported " + std::to_string(kFormatVersion));
  }

  // Walk and validate every section frame before serving any reads: a
  // truncated or bit-flipped file must be rejected wholesale, never
  // half-loaded.
  std::size_t pos = kHeaderSize;
  cursor_ = pos;
  section_end_ = image_.size();
  while (pos < image_.size()) {
    cursor_ = pos;
    const std::uint32_t name_len = get_le<std::uint32_t>();
    if (name_len == 0 || name_len > 4096 ||
        name_len > image_.size() - cursor_) {
      throw CkptError(sections_.empty() ? kHeaderSection
                                        : sections_.back().name,
                      "corrupt section frame after offset " +
                          std::to_string(pos));
    }
    std::string name(reinterpret_cast<const char*>(image_.data() + cursor_),
                     name_len);
    cursor_ += name_len;
    current_ = name;
    const std::uint64_t payload_len = get_le<std::uint64_t>();
    if (payload_len > image_.size() - cursor_) {
      throw CkptError(name, "truncated: payload needs " +
                                std::to_string(payload_len) +
                                " bytes, file has " +
                                std::to_string(image_.size() - cursor_));
    }
    const std::size_t payload_off = cursor_;
    cursor_ += static_cast<std::size_t>(payload_len);
    if (image_.size() - cursor_ < sizeof(std::uint32_t)) {
      throw CkptError(name, "truncated: missing checksum");
    }
    const std::uint32_t stored = get_le<std::uint32_t>();
    const std::uint32_t computed =
        crc32(image_.data() + payload_off, static_cast<std::size_t>(payload_len));
    if (stored != computed) {
      throw CkptError(name, "checksum mismatch (corrupt payload)");
    }
    sections_.push_back(
        {std::move(name), payload_off, static_cast<std::size_t>(payload_len)});
    pos = cursor_;
  }
  current_.clear();
  cursor_ = 0;
  section_end_ = 0;
}

Reader Reader::from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CkptError(kIoSection, "cannot open '" + path + "'");
  }
  std::vector<std::uint8_t> image;
  std::array<std::uint8_t, 65536> chunk;
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    image.insert(image.end(), chunk.begin(), chunk.begin() + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw CkptError(kIoSection, "read error on '" + path + "'");
  }
  return Reader(std::move(image));
}

bool Reader::has_section(std::string_view name) const {
  return find(name) != nullptr;
}

void Reader::enter_section(std::string_view name) {
  const Section* s = find(name);
  if (s == nullptr) {
    throw CkptError(std::string(name), "section missing from checkpoint");
  }
  current_ = s->name;
  cursor_ = s->offset;
  section_end_ = s->offset + s->size;
}

void Reader::end_section() {
  if (cursor_ != section_end_) {
    throw CkptError(current_,
                    std::to_string(section_end_ - cursor_) +
                        " unread trailing bytes (writer/reader skew)");
  }
}

bool Reader::get_bool() {
  const std::uint8_t v = get_u8();
  if (v > 1) {
    throw CkptError(current_, "bool encoded as " + std::to_string(v));
  }
  return v != 0;
}

std::string Reader::get_str() {
  const std::uint32_t len = get_le<std::uint32_t>();
  require(len);
  std::string s(reinterpret_cast<const char*>(image_.data() + cursor_), len);
  cursor_ += len;
  return s;
}

void Reader::get_bytes(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, image_.data() + cursor_, size);
  cursor_ += size;
}

std::vector<std::string> Reader::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const Section& s : sections_) names.push_back(s.name);
  return names;
}

void Reader::require(std::size_t bytes) {
  if (bytes > section_end_ - cursor_) {
    throw CkptError(current_.empty() ? kHeaderSection : current_,
                    "read of " + std::to_string(bytes) +
                        " bytes overruns section (only " +
                        std::to_string(section_end_ - cursor_) + " left)");
  }
}

const Reader::Section* Reader::find(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Checkpoint directory management

namespace {

constexpr const char* kExtension = ".tmck";

/// Parse "<basename>-e<digits>.tmck"; returns epoch or npos-like failure.
bool parse_epoch(const std::string& filename, const std::string& basename,
                 std::uint32_t* epoch) {
  const std::string prefix = basename + "-e";
  if (filename.size() <= prefix.size() + std::strlen(kExtension)) return false;
  if (filename.compare(0, prefix.size(), prefix) != 0) return false;
  if (filename.compare(filename.size() - std::strlen(kExtension),
                       std::strlen(kExtension), kExtension) != 0) {
    return false;
  }
  const std::string digits = filename.substr(
      prefix.size(),
      filename.size() - prefix.size() - std::strlen(kExtension));
  if (digits.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    if (value > 0xffffffffULL) return false;
  }
  *epoch = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

std::string checkpoint_path(const std::string& dir, const std::string& basename,
                            std::uint32_t epoch) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08u", epoch);
  return dir + "/" + basename + "-e" + buf + kExtension;
}

std::string latest_in(const std::string& dir, const std::string& basename) {
  std::error_code ec;
  std::uint32_t best_epoch = 0;
  std::string best;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint32_t epoch = 0;
    const std::string filename = entry.path().filename().string();
    if (!parse_epoch(filename, basename, &epoch)) continue;
    if (best.empty() || epoch > best_epoch) {
      best_epoch = epoch;
      best = entry.path().string();
    }
  }
  return best;
}

void prune(const std::string& dir, const std::string& basename,
           std::uint32_t keep_last) {
  std::error_code ec;
  std::vector<std::pair<std::uint32_t, std::filesystem::path>> found;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint32_t epoch = 0;
    if (parse_epoch(entry.path().filename().string(), basename, &epoch)) {
      found.emplace_back(epoch, entry.path());
    }
  }
  if (found.size() <= keep_last) return;
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = keep_last; i < found.size(); ++i) {
    std::filesystem::remove(found[i].second, ec);
  }
}

}  // namespace tmprof::util::ckpt
