#include "util/sketch.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/assert.hpp"

namespace tmprof::util {

namespace {

std::uint64_t next_pow2(std::uint64_t n) noexcept {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CountMinSketch::CountMinSketch(std::uint32_t width, std::uint32_t depth,
                               std::uint64_t seed)
    : depth_(depth), seed_(seed) {
  TMPROF_EXPECTS(width >= 1 && depth >= 1);
  width_ = static_cast<std::uint32_t>(
      next_pow2(std::max<std::uint64_t>(2, width)));
  mask_ = width_ - 1;
  std::uint64_t sm = seed;
  row_seeds_.reserve(depth_);
  for (std::uint32_t row = 0; row < depth_; ++row) {
    row_seeds_.push_back(splitmix64(sm));
  }
  cells_.resize(static_cast<std::size_t>(width_) * depth_, 0);
}

double CountMinSketch::epsilon() const noexcept {
  return width_ == 0 ? 0.0 : std::exp(1.0) / static_cast<double>(width_);
}

double CountMinSketch::delta() const noexcept {
  return std::exp(-static_cast<double>(depth_));
}

void CountMinSketch::add(std::uint64_t fingerprint, std::uint32_t n) {
  TMPROF_ASSERT(configured());
  if (n == 0) return;
  added_ += n;
  std::uint64_t est = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t row = 0; row < depth_; ++row) {
    est = std::min<std::uint64_t>(est, cells_[cell_index(row, fingerprint)]);
  }
  // Conservative update: only lift cells up to min + n. Saturate instead
  // of wrapping so a hammered cell degrades to "very hot", not to zero.
  constexpr std::uint64_t kCeil = std::numeric_limits<std::uint32_t>::max();
  const std::uint32_t target =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(kCeil, est + n));
  for (std::uint32_t row = 0; row < depth_; ++row) {
    std::uint32_t& cell = cells_[cell_index(row, fingerprint)];
    if (cell < target) cell = target;
  }
}

std::uint64_t CountMinSketch::estimate(std::uint64_t fingerprint) const {
  TMPROF_ASSERT(configured());
  std::uint64_t est = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t row = 0; row < depth_; ++row) {
    est = std::min<std::uint64_t>(est, cells_[cell_index(row, fingerprint)]);
  }
  return est;
}

void CountMinSketch::clear() noexcept {
  for (std::uint32_t& cell : cells_) cell = 0;
  added_ = 0;
}

void CountMinSketch::merge_add(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    throw std::logic_error("CountMinSketch::merge_add: shape mismatch");
  }
  constexpr std::uint64_t kCeil = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const std::uint64_t sum =
        static_cast<std::uint64_t>(cells_[i]) + other.cells_[i];
    cells_[i] = static_cast<std::uint32_t>(std::min(kCeil, sum));
  }
  added_ += other.added_;
}

void CountMinSketch::save_state(ckpt::Writer& w) const {
  w.put_u32(width_);
  w.put_u32(depth_);
  w.put_u64(seed_);
  w.put_u64(added_);
  for (const std::uint32_t cell : cells_) w.put_u32(cell);
}

void CountMinSketch::load_state(ckpt::Reader& r, const char* section) {
  const std::uint32_t width = r.get_u32();
  const std::uint32_t depth = r.get_u32();
  const std::uint64_t seed = r.get_u64();
  if (width != width_ || depth != depth_ || seed != seed_) {
    throw ckpt::CkptError(section, "count-min sketch shape mismatch");
  }
  added_ = r.get_u64();
  for (std::uint32_t& cell : cells_) cell = r.get_u32();
}

BloomFilter::BloomFilter(std::uint64_t bits, std::uint32_t hashes,
                         std::uint64_t seed)
    : hashes_(hashes), seed_(seed) {
  TMPROF_EXPECTS(bits >= 1 && hashes >= 1);
  bits_ = next_pow2(std::max<std::uint64_t>(64, bits));
  mask_ = bits_ - 1;
  // Offset the stream so a Bloom and a sketch sharing one SketchParams
  // seed still draw distinct hash families.
  std::uint64_t sm = seed ^ 0xb100f117e2a5c3d1ULL;
  hash_seeds_.reserve(hashes_);
  for (std::uint32_t h = 0; h < hashes_; ++h) {
    hash_seeds_.push_back(splitmix64(sm));
  }
  words_.resize(bits_ / 64, 0);
}

std::uint64_t BloomFilter::ones() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t word : words_) {
    n += static_cast<std::uint64_t>(std::popcount(word));
  }
  return n;
}

bool BloomFilter::insert(std::uint64_t fingerprint) {
  TMPROF_ASSERT(configured());
  bool definitely_new = false;
  for (std::uint32_t h = 0; h < hashes_; ++h) {
    const std::uint64_t bit = bit_index(h, fingerprint);
    std::uint64_t& word = words_[bit >> 6];
    const std::uint64_t mask = 1ull << (bit & 63);
    if ((word & mask) == 0) {
      definitely_new = true;
      word |= mask;
    }
  }
  return definitely_new;
}

bool BloomFilter::maybe_contains(std::uint64_t fingerprint) const {
  TMPROF_ASSERT(configured());
  for (std::uint32_t h = 0; h < hashes_; ++h) {
    const std::uint64_t bit = bit_index(h, fingerprint);
    if ((words_[bit >> 6] & (1ull << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() noexcept {
  for (std::uint64_t& word : words_) word = 0;
}

void BloomFilter::merge_or(const BloomFilter& other) {
  if (bits_ != other.bits_ || hashes_ != other.hashes_ ||
      seed_ != other.seed_) {
    throw std::logic_error("BloomFilter::merge_or: shape mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void BloomFilter::save_state(ckpt::Writer& w) const {
  w.put_u64(bits_);
  w.put_u32(hashes_);
  w.put_u64(seed_);
  for (const std::uint64_t word : words_) w.put_u64(word);
}

void BloomFilter::load_state(ckpt::Reader& r, const char* section) {
  const std::uint64_t bits = r.get_u64();
  const std::uint32_t hashes = r.get_u32();
  const std::uint64_t seed = r.get_u64();
  if (bits != bits_ || hashes != hashes_ || seed != seed_) {
    throw ckpt::CkptError(section, "bloom filter shape mismatch");
  }
  for (std::uint64_t& word : words_) word = r.get_u64();
}

}  // namespace tmprof::util
