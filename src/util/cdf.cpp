#include "util/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/assert.hpp"

namespace tmprof::util {

EmpiricalCdf::EmpiricalCdf(std::vector<std::uint64_t> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(std::uint64_t value) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::uint64_t EmpiricalCdf::quantile(double q) const {
  TMPROF_EXPECTS(!sorted_.empty());
  TMPROF_EXPECTS(q >= 0.0 && q <= 1.0);
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  if (idx > 0) --idx;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

std::uint64_t EmpiricalCdf::min() const {
  TMPROF_EXPECTS(!sorted_.empty());
  return sorted_.front();
}

std::uint64_t EmpiricalCdf::max() const {
  TMPROF_EXPECTS(!sorted_.empty());
  return sorted_.back();
}

std::vector<std::pair<std::uint64_t, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  TMPROF_EXPECTS(points >= 2);
  std::vector<std::pair<std::uint64_t, double>> rows;
  if (sorted_.empty()) return rows;
  rows.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    const std::uint64_t v = quantile(q);
    rows.emplace_back(v, at(v));
  }
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

void EmpiricalCdf::write_csv(std::ostream& os, std::size_t points) const {
  os << "value,cum_fraction\n";
  for (const auto& [v, f] : curve(points)) os << v << ',' << f << '\n';
}

}  // namespace tmprof::util
