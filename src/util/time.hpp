#pragma once
/// \file time.hpp
/// Simulated-time types. The simulator advances a nanosecond clock; cycles
/// convert through a fixed core frequency (3.8 GHz, the paper's Ryzen 3600X).

#include <cstdint>

namespace tmprof::util {

/// Simulated nanoseconds since experiment start.
using SimNs = std::uint64_t;

inline constexpr double kCoreGhz = 3.8;

constexpr SimNs cycles_to_ns(std::uint64_t cycles) noexcept {
  return static_cast<SimNs>(static_cast<double>(cycles) / kCoreGhz);
}

constexpr std::uint64_t ns_to_cycles(SimNs ns) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(ns) * kCoreGhz);
}

inline constexpr SimNs kMicrosecond = 1000;
inline constexpr SimNs kMillisecond = 1000 * kMicrosecond;
inline constexpr SimNs kSecond = 1000 * kMillisecond;

}  // namespace tmprof::util
