#include "util/zipf.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace tmprof::util {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  TMPROF_EXPECTS(n >= 1);
  TMPROF_EXPECTS(theta > 0.0 && theta != 1.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  harmonic_ = 0.0;
  // Exact harmonic for pmf(); O(n) once at construction. Capped so that
  // pathological sizes in tests don't stall: beyond the cap we approximate
  // with the integral, which is within 1e-6 for the tail.
  const std::uint64_t exact_cap = 4'000'000;
  const std::uint64_t limit = n < exact_cap ? n : exact_cap;
  for (std::uint64_t k = 1; k <= limit; ++k) {
    harmonic_ += std::pow(static_cast<double>(k), -theta_);
  }
  if (n > exact_cap) {
    harmonic_ += h_integral(static_cast<double>(n) + 0.5) -
                 h_integral(static_cast<double>(exact_cap) + 0.5);
  }
}

double ZipfDistribution::h(double x) const { return std::pow(x, -theta_); }

double ZipfDistribution::h_integral(double x) const {
  // H(x) = (x^(1-theta) - 1) / (1-theta); the form whose inverse
  // h_integral_inverse computes (theta != 1 by precondition).
  const double log_x = std::log(x);
  return std::expm1((1.0 - theta_) * log_x) / (1.0 - theta_);
}

double ZipfDistribution::h_integral_inverse(double x) const {
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // numeric guard near the distribution head
  return std::exp(std::log1p(t) / (1.0 - theta_));
}

std::uint64_t ZipfDistribution::operator()(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;  // return 0-based rank
    }
  }
}

double ZipfDistribution::pmf(std::uint64_t rank) const {
  TMPROF_EXPECTS(rank < n_);
  return std::pow(static_cast<double>(rank + 1), -theta_) / harmonic_;
}

HotColdDistribution::HotColdDistribution(std::uint64_t items,
                                         std::uint64_t hot_items,
                                         double hot_weight)
    : items_(items), hot_items_(hot_items), hot_weight_(hot_weight) {
  TMPROF_EXPECTS(items >= 1);
  TMPROF_EXPECTS(hot_items >= 1 && hot_items <= items);
  TMPROF_EXPECTS(hot_weight >= 0.0 && hot_weight <= 1.0);
}

std::uint64_t HotColdDistribution::operator()(Rng& rng) const {
  if (hot_items_ == items_ || rng.chance(hot_weight_)) {
    return rng.below(hot_items_);
  }
  return hot_items_ + rng.below(items_ - hot_items_);
}

}  // namespace tmprof::util
