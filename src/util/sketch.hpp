#pragma once
/// \file sketch.hpp
/// Probabilistic hotness substrates: a count-min sketch (conservative
/// update) and a Bloom filter, the building blocks of the sketch-mode
/// hotness store (docs/SKETCH.md).
///
/// Both structures are deterministic: their hash families are derived from
/// an explicit seed through the splitmix64 stream (util/rng.hpp), so two
/// instances built with the same parameters and fed the same stream are
/// bitwise identical — the property the sharded engine's barrier merge and
/// the checkpoint/resume tests rely on.
///
/// The count-min sketch uses *conservative update*: an add of n raises only
/// the cells that would otherwise fall below min+n. This keeps the
/// one-sided error guarantee (estimate >= true count, never under) while
/// shrinking the overcount substantially on skewed streams. Conservative
/// update also composes with the barrier merge: every cell a key hashes to
/// stays >= that key's true count, so a cell-wise saturating add of shard
/// sketches preserves the no-undercount invariant for the merged stream.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/ckpt.hpp"
#include "util/rng.hpp"

namespace tmprof::util {

/// Shared sizing knobs for the sketch-mode hotness store. Widths and bit
/// counts are rounded up to powers of two by the constructors.
struct SketchParams {
  /// Count-min cells per row. Error bound: estimate <= true + (e/width)*N
  /// with probability >= 1 - e^-depth, N = total stream count.
  std::uint32_t width = 1u << 14;
  std::uint32_t depth = 4;
  /// Hash-family seed. Both sketch and Bloom derive their per-row seeds
  /// from it via the splitmix64 stream.
  std::uint64_t seed = 0x5eedb10c4a7c15ULL;
  /// Bloom filter size in bits (new-page detection).
  std::uint64_t bloom_bits = 1ull << 20;
  std::uint32_t bloom_hashes = 4;

  friend bool operator==(const SketchParams&, const SketchParams&) = default;
};

/// Count-min sketch over 64-bit key fingerprints with u32 saturating cells.
class CountMinSketch {
 public:
  /// Unconfigured (zero rows); add/estimate require configuration.
  CountMinSketch() = default;
  CountMinSketch(std::uint32_t width, std::uint32_t depth, std::uint64_t seed);

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] bool configured() const noexcept { return !cells_.empty(); }
  /// Total stream count N added so far (exact; merge-accumulated).
  [[nodiscard]] std::uint64_t added() const noexcept { return added_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells_.size() * sizeof(std::uint32_t) +
           row_seeds_.size() * sizeof(std::uint64_t);
  }
  /// epsilon of the (epsilon, delta) bound: e / width.
  [[nodiscard]] double epsilon() const noexcept;
  /// delta of the (epsilon, delta) bound: e^-depth.
  [[nodiscard]] double delta() const noexcept;

  /// Conservative update: raise the key's cells to min(cells) + n,
  /// saturating at the u32 ceiling.
  void add(std::uint64_t fingerprint, std::uint32_t n = 1);
  /// One-sided estimate: min over the key's cells; >= the true count.
  [[nodiscard]] std::uint64_t estimate(std::uint64_t fingerprint) const;

  /// Zero all cells, keep the allocation (epoch swap-and-clear protocol).
  void clear() noexcept;

  /// Cell-wise saturating add (the epoch-barrier shard merge). Requires
  /// identical (width, depth, seed); throws std::logic_error otherwise.
  void merge_add(const CountMinSketch& other);

  friend bool operator==(const CountMinSketch&,
                         const CountMinSketch&) = default;

  /// Checkpoint round trip. load_state validates the stored shape against
  /// this instance and throws CkptError(section) on mismatch, so a resume
  /// with different sketch parameters falls back to a cold start.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r, const char* section);

 private:
  [[nodiscard]] std::size_t cell_index(std::uint32_t row,
                                       std::uint64_t fingerprint) const {
    // Per-row seeded full-avalanche mix (splitmix64 finalizer). Rows use
    // independent seeds from the splitmix stream, giving the pairwise-
    // independent-enough family the epsilon-delta analysis assumes.
    std::uint64_t x = fingerprint ^ row_seeds_[row];
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(row) * width_ +
           static_cast<std::size_t>(x & mask_);
  }

  std::uint32_t width_ = 0;  ///< cells per row (power of two)
  std::uint32_t depth_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t mask_ = 0;
  std::uint64_t added_ = 0;
  std::vector<std::uint64_t> row_seeds_;
  std::vector<std::uint32_t> cells_;  ///< depth_ rows of width_ cells
};

/// Bloom filter over 64-bit key fingerprints. No false negatives: once a
/// fingerprint is inserted, maybe_contains() is true forever.
class BloomFilter {
 public:
  BloomFilter() = default;
  BloomFilter(std::uint64_t bits, std::uint32_t hashes, std::uint64_t seed);

  [[nodiscard]] std::uint64_t bit_count() const noexcept { return bits_; }
  [[nodiscard]] std::uint32_t hashes() const noexcept { return hashes_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] bool configured() const noexcept { return !words_.empty(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t) +
           hash_seeds_.size() * sizeof(std::uint64_t);
  }
  /// Number of set bits (fill-rate diagnostics).
  [[nodiscard]] std::uint64_t ones() const noexcept;

  /// Insert; returns true when the fingerprint was *definitely new* (at
  /// least one of its bits was clear). A false return may be a false
  /// positive of the filter, never the reverse.
  bool insert(std::uint64_t fingerprint);
  [[nodiscard]] bool maybe_contains(std::uint64_t fingerprint) const;

  void clear() noexcept;

  /// Bit-wise OR merge. Requires identical (bits, hashes, seed); throws
  /// std::logic_error otherwise.
  void merge_or(const BloomFilter& other);

  friend bool operator==(const BloomFilter&, const BloomFilter&) = default;

  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r, const char* section);

 private:
  [[nodiscard]] std::uint64_t bit_index(std::uint32_t hash,
                                        std::uint64_t fingerprint) const {
    std::uint64_t x = fingerprint ^ hash_seeds_[hash];
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x & mask_;
  }

  std::uint64_t bits_ = 0;  ///< power of two
  std::uint64_t mask_ = 0;
  std::uint32_t hashes_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint64_t> hash_seeds_;
  std::vector<std::uint64_t> words_;
};

}  // namespace tmprof::util
