#pragma once
/// \file thread_pool.hpp
/// Fixed-size worker pool with *sharded* FIFO queues: tasks submitted with
/// the same shard key run on one worker in submission order, tasks with
/// different keys run concurrently. The sharded access engine maps each
/// simulated core to a shard, which keeps per-core simulation state
/// single-writer without locks and makes results independent of how many
/// OS threads actually execute the shards.

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tmprof::util {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (>= 1).
  explicit ThreadPool(std::uint32_t n_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Waits for queued work, then joins the workers. Any task exception
  /// still pending (wait_idle never called) is swallowed here — call
  /// wait_idle() to observe failures.
  ~ThreadPool();

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Enqueue `fn` on the worker owning `shard` (shard % size()). Tasks that
  /// share a shard key execute in submission order; nothing else is ordered.
  void submit(std::size_t shard, std::function<void()> fn);

  /// Block until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown (subsequent ones are dropped) and
  /// the pool remains usable. Returns immediately when nothing is pending.
  void wait_idle();

  /// wait_idle(), except the caller's thread calls `pump()` repeatedly
  /// while tasks are still pending (roughly every `interval_us`), instead
  /// of sleeping the whole time. The streaming engine uses this to consume
  /// the monitors' sample rings concurrently with shard execution, turning
  /// barrier merge work into overlap. `pump` runs on the calling thread
  /// only, never concurrently with itself, and one final time is NOT added
  /// after idle — callers drain at the seal anyway.
  void wait_idle_pumping(const std::function<void()>& pump,
                         std::uint32_t interval_us = 50);

  /// Run fn(0..n-1), one task per index sharded by the index, then
  /// wait_idle(). Convenience barrier for per-core fan-out.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Worker {
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;  ///< guarded by `mutex`
  };

  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::uint64_t pending_ = 0;       ///< guarded by done_mutex_
  std::exception_ptr first_error_;  ///< guarded by done_mutex_
};

}  // namespace tmprof::util
