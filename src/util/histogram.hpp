#pragma once
/// \file histogram.hpp
/// 1-D and 2-D histograms. The 2-D histogram backs the paper's access
/// heatmaps (Figs. 3 and 4): time on the X axis, physical address on Y,
/// access count as temperature.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tmprof::util {

/// Fixed-range linear-bucket histogram over uint64 values.
class Histogram {
 public:
  Histogram(std::uint64_t lo, std::uint64_t hi, std::size_t buckets);

  void add(std::uint64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// Weighted sum of every added value (including under/overflow), for
  /// Prometheus-style `_sum` exposition.
  [[nodiscard]] std::uint64_t value_sum() const noexcept { return sum_; }
  /// Overwrite the value sum. Checkpoint-restore only: bucket counts carry
  /// no exact values, so a deserializer rebuilds counts and patches the
  /// exact sum back in.
  void set_value_sum(std::uint64_t sum) noexcept { sum_ = sum; }

  /// Inclusive lower edge of a bucket.
  [[nodiscard]] std::uint64_t bucket_lo(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t lo() const noexcept { return lo_; }
  [[nodiscard]] std::uint64_t hi() const noexcept { return hi_; }

  /// True when `other` has the same range and bucket grid, i.e. the two
  /// histograms can be merged cell-for-cell.
  [[nodiscard]] bool same_shape(const Histogram& other) const noexcept;

  /// Add every count of `other` into this histogram (shard-merge). Both
  /// histograms must have the same shape; merging is associative and
  /// commutative, so any shard partitioning of the same adds produces
  /// bitwise-identical totals.
  void merge(const Histogram& other);

  /// Zero every count (shape is kept). Used by shard-local histograms
  /// after an epoch-barrier merge.
  void reset() noexcept;

  /// q-quantile estimate in [lo, hi] by linear interpolation inside the
  /// covering bucket; q is clamped to [0, 1]. Underflow mass sits at `lo`,
  /// overflow mass at `hi`. An empty histogram returns `lo` — never NaN —
  /// so merged-from-empty-shards quantiles stay well defined.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::uint64_t lo_;
  std::uint64_t hi_;
  std::uint64_t width_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t sum_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Time × address heatmap with fixed bucket grids on both axes.
class Heatmap {
 public:
  /// \param time_hi     exclusive upper bound of the time axis
  /// \param time_bins   number of time buckets (heatmap columns)
  /// \param addr_hi     exclusive upper bound of the address axis
  /// \param addr_bins   number of address buckets (heatmap rows)
  Heatmap(std::uint64_t time_hi, std::size_t time_bins, std::uint64_t addr_hi,
          std::size_t addr_bins);

  void add(std::uint64_t time, std::uint64_t addr, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t time_bins() const noexcept { return time_bins_; }
  [[nodiscard]] std::size_t addr_bins() const noexcept { return addr_bins_; }
  [[nodiscard]] std::uint64_t at(std::size_t time_bin,
                                 std::size_t addr_bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max_cell() const noexcept { return max_cell_; }

  /// ASCII rendering: one row per address bucket (top = high addresses),
  /// characters from " .:-=+*#%@" by intensity relative to max_cell().
  [[nodiscard]] std::string render_ascii() const;

  /// CSV rows: time_bin,addr_bin,count (only non-zero cells).
  void write_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::size_t index(std::size_t t, std::size_t a) const noexcept {
    return a * time_bins_ + t;
  }

  std::uint64_t time_hi_;
  std::uint64_t addr_hi_;
  std::size_t time_bins_;
  std::size_t addr_bins_;
  std::uint64_t total_ = 0;
  std::uint64_t max_cell_ = 0;
  std::vector<std::uint64_t> cells_;
};

}  // namespace tmprof::util
