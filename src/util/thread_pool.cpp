#include "util/thread_pool.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace tmprof::util {

ThreadPool::ThreadPool(std::uint32_t n_threads) {
  TMPROF_EXPECTS(n_threads >= 1);
  queues_.reserve(n_threads);
  for (std::uint32_t i = 0; i < n_threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(n_threads);
  for (std::uint32_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : queues_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->stop = true;
    worker->cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::size_t shard, std::function<void()> fn) {
  TMPROF_EXPECTS(fn != nullptr);
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    ++pending_;
  }
  Worker& worker = *queues_[shard % queues_.size()];
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    worker.queue.push_back(std::move(fn));
  }
  worker.cv.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::wait_idle_pumping(const std::function<void()>& pump,
                                   std::uint32_t interval_us) {
  TMPROF_EXPECTS(pump != nullptr);
  const auto interval = std::chrono::microseconds(interval_us);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(done_mutex_);
      if (done_cv_.wait_for(lock, interval, [this] { return pending_ == 0; })) {
        if (first_error_) {
          std::exception_ptr error = first_error_;
          first_error_ = nullptr;
          std::rethrow_exception(error);
        }
        return;
      }
    }
    // Timed out with work still pending: pump outside the lock so workers
    // can retire tasks while the consumer runs.
    pump();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit(i, [&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop(std::size_t index) {
  Worker& worker = *queues_[index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(worker.mutex);
      worker.cv.wait(lock,
                     [&] { return worker.stop || !worker.queue.empty(); });
      // Drain remaining tasks even when stopping so wait_idle counts settle.
      if (worker.queue.empty()) return;
      task = std::move(worker.queue.front());
      worker.queue.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      if (error && !first_error_) first_error_ = error;
      --pending_;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace tmprof::util
