#pragma once
/// \file ring.hpp
/// Bounded lock-free single-producer/single-consumer ring buffer — the
/// per-lane transport of the streaming sample path (docs/STREAMING.md).
///
/// One thread pushes, one thread pops; no other concurrency is supported.
/// Capacity is a fixed power of two so the cursors can run free and index
/// by mask. The producer publishes a slot with a release store of `tail_`,
/// the consumer acquires it before reading, so a popped record's payload —
/// and everything the producer wrote before pushing it — is visible to the
/// consumer without any lock.
///
/// A push into a full ring fails and is *counted* (`drops()`), never
/// blocked: the caller decides what an overflow means. The streaming
/// transport spills such records to a lane-local buffer that drains at the
/// epoch seal, so profiling evidence is never lost to consumer scheduling
/// (that would break thread-count invariance); the drop counter still
/// records how often the ring back-pressured.

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace tmprof::util {

template <typename T>
class SpscRing {
 public:
  /// `capacity` must be a power of two >= 2. Slots are default-constructed
  /// up front; push copies into a slot, pop copies out.
  explicit SpscRing(std::uint32_t capacity)
      : slots_(capacity), mask_(capacity - 1) {
    TMPROF_EXPECTS(capacity >= 2);
    TMPROF_EXPECTS((capacity & (capacity - 1)) == 0);
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Producer: append `value`. Returns false — and counts a drop — when the
  /// ring is full. Also maintains the occupancy high-water mark.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t used = tail - head;
    if (used == slots_.size()) {
      drops_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    const std::uint64_t depth = used + 1;
    if (depth > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(depth, std::memory_order_relaxed);
    }
    return true;
  }

  /// Consumer: remove the oldest record into `out`; false when empty.
  bool pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: pop every record visible at entry, invoking `fn(record)` in
  /// FIFO order; returns how many were consumed. Draining an empty ring is
  /// a no-op (idempotent), so seal paths may call it repeatedly.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t n = 0;
    T record;
    while (pop(record)) {
      fn(static_cast<const T&>(record));
      ++n;
    }
    return n;
  }

  /// Approximate occupancy. Exact when the other side is quiescent (the
  /// only time the transport reads it).
  [[nodiscard]] std::uint64_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Failed pushes since construction (or the last reset_stats()).
  [[nodiscard]] std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  /// Records ever pushed successfully (producer cursor).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return tail_.load(std::memory_order_acquire);
  }
  /// Deepest occupancy a push has observed since the last reset_stats().
  [[nodiscard]] std::uint64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Clear just the high-water mark (per-epoch depth gauge); the drop
  /// tally stays cumulative. Call only while the producer is quiescent.
  void reset_high_water() noexcept {
    high_water_.store(0, std::memory_order_relaxed);
  }

  /// Clear the drop tally and high-water mark (epoch-seal bookkeeping).
  /// Call only while both sides are quiescent.
  void reset_stats() noexcept {
    drops_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::uint64_t mask_;
  /// Cursors on separate cache lines so producer and consumer don't
  /// false-share; each grows monotonically and indexes via `mask_`.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

}  // namespace tmprof::util
