#pragma once
/// \file tiers.hpp
/// Tiered physical memory: a contiguous physical frame space partitioned
/// into tiers (tier 1 = fast DRAM, tier 2 = slow NVM). Owns the frame
/// allocator and the frame → (pid, vaddr) reverse map that the TMP driver's
/// phys_to_page() analog and the page mover rely on.
///
/// Each tier can optionally be split into N *arenas* — disjoint frame
/// ranges with independent bump pointers and free lists, analogous to the
/// kernel's per-CPU page allocator caches. The sharded access engine gives
/// every simulated core its own arena, so concurrent first-touch faults on
/// different cores allocate race-free and the PFN handed to a given
/// (core, fault sequence) is a pure function of that shard's history —
/// independent of how many OS threads replay the shards.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/addr.hpp"
#include "util/time.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::mem {

/// Index of a memory tier; 0 is the fastest.
using TierId = std::uint8_t;

/// Static description of one tier.
struct TierSpec {
  std::string name;
  std::uint64_t frames = 0;          ///< capacity in 4 KiB frames
  util::SimNs read_latency_ns = 0;   ///< loaded access latency
  util::SimNs write_latency_ns = 0;
  /// Per-cache-line bandwidth term charged on every access that reaches
  /// this tier's device (~64 B / device GB/s). 0 (default) models an
  /// unconstrained link and keeps pre-chain behavior bitwise.
  util::SimNs line_transfer_ns = 0;
};

/// Largest tier-chain length the simulator supports. Per-process fill
/// accounting uses fixed arrays of this size so the epoch hot path stays
/// allocation-free regardless of chain depth.
inline constexpr std::size_t kMaxTiers = 8;

/// Per-frame ownership record (the simulator's struct page).
struct FrameInfo {
  Pid pid = 0;
  VirtAddr page_va = 0;      ///< base VA of the mapping using this frame
  PageSize size = PageSize::k4K;
  bool allocated = false;
  bool head = false;         ///< head frame of a (possibly huge) allocation
};

/// Physical memory across all tiers.
///
/// 4 KiB frames are handed out from the bottom of each arena and 2 MiB
/// chunks from the top; the two regions never interleave, which keeps huge
/// allocations contiguous without a buddy allocator.
class PhysMemory {
 public:
  /// \param arenas  per-tier arena count (1 = the classic single allocator).
  explicit PhysMemory(std::vector<TierSpec> tiers, std::uint32_t arenas = 1);

  [[nodiscard]] std::size_t tier_count() const noexcept {
    return tiers_.size();
  }
  [[nodiscard]] const TierSpec& tier(TierId id) const;
  [[nodiscard]] std::uint64_t total_frames() const noexcept {
    return total_frames_;
  }
  [[nodiscard]] std::uint32_t arenas() const noexcept { return arenas_; }

  /// Which tier a frame belongs to.
  [[nodiscard]] TierId tier_of(Pfn pfn) const;

  /// Allocate a page of `size` from `preferred` tier, falling back to the
  /// next slower tiers if full (first-touch behavior). Returns the head PFN,
  /// or nullopt if all tiers are exhausted. With multiple arenas only the
  /// given arena of each tier is considered (keeps parallel faults
  /// race-free and deterministic); callers pick the arena by core.
  std::optional<Pfn> alloc(TierId preferred, Pid pid, VirtAddr page_va,
                           PageSize size, std::uint32_t arena = 0);

  /// Allocate strictly from `tier` (no fallback); used by the page mover.
  std::optional<Pfn> alloc_exact(TierId tier, Pid pid, VirtAddr page_va,
                                 PageSize size, std::uint32_t arena = 0);

  /// Release a previously allocated page (head PFN). The frame returns to
  /// the arena whose range contains it.
  void free(Pfn head);

  /// Re-carve every tier's arena boundaries proportional to `weights`
  /// (one entry per arena; a zero-weight arena gets zero frames). The
  /// equal split of the constructor starves workloads whose processes
  /// cluster on few cores — e.g. a single-process workload only ever
  /// faults into one arena — so the system re-carves as processes are
  /// added, weighting each arena by the processes it will serve. Legal
  /// only while no frame is allocated; returns false (and leaves the
  /// carve untouched) once allocation has begun. Boundaries are a pure
  /// function of `weights`, so the carve stays reproducible across runs
  /// and thread counts.
  bool rebalance_arenas(const std::vector<std::uint64_t>& weights);

  /// Frame ownership lookup (phys_to_page analog).
  [[nodiscard]] const FrameInfo& frame(Pfn pfn) const;

  [[nodiscard]] std::uint64_t free_frames(TierId tier) const;
  [[nodiscard]] std::uint64_t used_frames(TierId tier) const;

  /// Checkpoint hooks: serializes arena boundaries, bump pointers, free
  /// lists and the full frame ownership map. Tier/arena counts must match
  /// the constructed geometry on load.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

 private:
  /// One independently bump-allocated frame range within a tier.
  struct ArenaState {
    Pfn base = 0;                ///< first frame of the arena
    Pfn top = 0;                 ///< one past the last frame
    Pfn low_bump = 0;            ///< next never-used 4 KiB frame
    Pfn high_bump = 0;           ///< top boundary for 2 MiB carving
    std::vector<Pfn> free_4k;    ///< recycled 4 KiB frames
    std::vector<Pfn> free_2m;    ///< recycled 2 MiB head frames
    std::uint64_t used = 0;      ///< allocated 4 KiB-frame count
  };

  struct TierState {
    TierSpec spec;
    Pfn base = 0;                ///< first frame of the tier
    std::vector<ArenaState> arenas;
  };

  std::optional<Pfn> take(ArenaState& arena, PageSize size);

  std::vector<TierState> tiers_;
  std::vector<FrameInfo> frames_;
  std::uint64_t total_frames_ = 0;
  std::uint32_t arenas_ = 1;
};

}  // namespace tmprof::mem
