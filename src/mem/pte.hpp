#pragma once
/// \file pte.hpp
/// Page-table entry layout. Mirrors x86-64 semantics for the bits the paper
/// relies on: present (P), writable (W), accessed (A), dirty (D), page-size
/// (PS, identifies a 2 MiB leaf), and the software-reserved bit 51 that
/// BadgerTrap uses to *poison* translations.

#include <cstdint>

#include "mem/addr.hpp"

namespace tmprof::mem {

/// A single 64-bit page-table entry. Value type; the PageTable owns storage.
class Pte {
 public:
  constexpr Pte() noexcept = default;

  [[nodiscard]] constexpr bool present() const noexcept { return get(kPresent); }
  [[nodiscard]] constexpr bool writable() const noexcept { return get(kWrite); }
  [[nodiscard]] constexpr bool accessed() const noexcept { return get(kAccessed); }
  [[nodiscard]] constexpr bool dirty() const noexcept { return get(kDirty); }
  [[nodiscard]] constexpr bool huge() const noexcept { return get(kHuge); }
  [[nodiscard]] constexpr bool poisoned() const noexcept { return get(kPoison); }

  constexpr void set_present(bool v) noexcept { set(kPresent, v); }
  constexpr void set_writable(bool v) noexcept { set(kWrite, v); }
  constexpr void set_accessed(bool v) noexcept { set(kAccessed, v); }
  constexpr void set_dirty(bool v) noexcept { set(kDirty, v); }
  constexpr void set_huge(bool v) noexcept { set(kHuge, v); }
  constexpr void set_poisoned(bool v) noexcept { set(kPoison, v); }

  /// Atomically-in-spirit test-and-clear of the accessed bit
  /// (TestClearPageReferenced in the paper's A-bit driver).
  constexpr bool test_clear_accessed() noexcept {
    const bool was = accessed();
    set_accessed(false);
    return was;
  }

  [[nodiscard]] constexpr Pfn pfn() const noexcept {
    return (bits_ >> kPfnShift) & kPfnMask;
  }
  constexpr void set_pfn(Pfn pfn) noexcept {
    bits_ = (bits_ & ~(kPfnMask << kPfnShift)) |
            ((pfn & kPfnMask) << kPfnShift);
  }

  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return bits_; }
  /// Overwrite the whole word; checkpoint restore re-materialises saved
  /// entries (A/D/poison bits and all) in one store.
  constexpr void set_raw(std::uint64_t bits) noexcept { bits_ = bits; }

  [[nodiscard]] constexpr PageSize page_size() const noexcept {
    return huge() ? PageSize::k2M : PageSize::k4K;
  }

 private:
  // Bit positions follow the x86-64 PTE format.
  static constexpr unsigned kPresent = 0;
  static constexpr unsigned kWrite = 1;
  static constexpr unsigned kAccessed = 5;
  static constexpr unsigned kDirty = 6;
  static constexpr unsigned kHuge = 7;   // PS bit at PD level
  static constexpr unsigned kPoison = 51;
  static constexpr unsigned kPfnShift = 12;
  static constexpr std::uint64_t kPfnMask = (1ULL << 38) - 1;  // bits 12..49

  [[nodiscard]] constexpr bool get(unsigned bit) const noexcept {
    return (bits_ >> bit) & 1U;
  }
  constexpr void set(unsigned bit, bool v) noexcept {
    if (v) bits_ |= (1ULL << bit);
    else bits_ &= ~(1ULL << bit);
  }

  std::uint64_t bits_ = 0;
};

static_assert(sizeof(Pte) == 8, "PTE must stay a single machine word");

}  // namespace tmprof::mem
