#include "mem/cache.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::mem {

namespace {
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(std::uint64_t size_bytes, std::uint32_t ways)
    : ways_(ways) {
  TMPROF_EXPECTS(ways >= 1);
  TMPROF_EXPECTS(size_bytes >= kLineSize * ways);
  const std::uint64_t lines = size_bytes / kLineSize;
  TMPROF_EXPECTS(lines % ways == 0);
  const std::uint64_t sets = lines / ways;
  TMPROF_EXPECTS(is_pow2(sets));
  sets_ = static_cast<std::uint32_t>(sets);
  ways_storage_.resize(static_cast<std::size_t>(sets_) * ways_);
}

bool CacheLevel::access(PhysAddr paddr, bool is_store) {
  const std::uint64_t line = line_of(paddr);
  Way* base = &ways_storage_[set_of(line) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = ++tick_;
      way.dirty = way.dirty || is_store;
      return true;
    }
  }
  return false;
}

bool CacheLevel::fill(PhysAddr paddr, std::uint32_t owner) {
  const std::uint64_t line = line_of(paddr);
  Way* base = &ways_storage_[set_of(line) * ways_];
  Way* victim = &base[0];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) return false;  // already resident
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  const bool evicted = victim->valid;
  if (evicted && victim->dirty) ++dirty_evictions_;
  victim->tag = line;
  victim->valid = true;
  victim->dirty = false;
  victim->owner = owner;
  victim->lru = ++tick_;
  return evicted;
}

std::uint64_t CacheLevel::occupancy_lines(std::uint32_t owner) const {
  std::uint64_t lines = 0;
  for (const Way& way : ways_storage_) {
    if (way.valid && way.owner == owner) ++lines;
  }
  return lines;
}

bool CacheLevel::contains(PhysAddr paddr) const {
  const std::uint64_t line = line_of(paddr);
  const Way* base = &ways_storage_[set_of(line) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line) return true;
  }
  return false;
}

void CacheLevel::flush() {
  for (Way& way : ways_storage_) way.valid = false;
}

CacheHierarchy::CacheHierarchy(std::uint64_t l1_bytes, std::uint32_t l1_ways,
                               std::uint64_t l2_bytes, std::uint32_t l2_ways,
                               CacheLevel* llc, bool enable_prefetch)
    : l1_(l1_bytes, l1_ways),
      l2_(l2_bytes, l2_ways),
      llc_(llc),
      prefetch_(enable_prefetch) {
  TMPROF_EXPECTS(llc != nullptr);
}

CacheHierarchy CacheHierarchy::make_default(CacheLevel* llc,
                                            bool enable_prefetch) {
  return CacheHierarchy(32ULL << 10, 8, 512ULL << 10, 8, llc, enable_prefetch);
}

CacheAccess CacheHierarchy::access(PhysAddr paddr, bool is_store,
                                   std::uint32_t owner) {
  CacheAccess result;
  if (l1_.access(paddr, is_store)) {
    result.source = DataSource::L1;
    return result;
  }
  if (l2_.access(paddr, is_store)) {
    l1_.fill(paddr);
    result.source = DataSource::L2;
    return result;
  }
  if (llc_->access(paddr, is_store)) {
    l2_.fill(paddr);
    l1_.fill(paddr);
    result.source = DataSource::LLC;
    return result;
  }
  // Demand miss all the way to memory: fill every level.
  result.llc_miss = true;
  result.source = DataSource::MemTier1;  // caller refines the tier
  llc_->fill(paddr, owner);
  l2_.fill(paddr);
  l1_.fill(paddr);
  if (prefetch_) {
    // Sequential next-line prefetch into the LLC. Only trigger on a
    // different demand line than last time to avoid self-feeding on
    // repeated misses to one line.
    const std::uint64_t line = line_of(paddr);
    if (line != last_demand_line_) {
      last_demand_line_ = line;
      const PhysAddr next = paddr + kLineSize;
      if (!llc_->contains(next)) {
        llc_->fill(next, owner);  // prefetches bill the triggering RMID
        ++prefetch_fills_;
        result.prefetch_issued = true;
      }
    }
  }
  return result;
}

void CacheHierarchy::flush() {
  l1_.flush();
  l2_.flush();
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void CacheLevel::save_state(util::ckpt::Writer& w) const {
  w.put_u32(sets_);
  w.put_u32(ways_);
  w.put_u64(tick_);
  w.put_u64(dirty_evictions_);
  for (const Way& way : ways_storage_) {
    w.put_u64(way.tag);
    w.put_u64(way.lru);
    w.put_u32(way.owner);
    w.put_bool(way.valid);
    w.put_bool(way.dirty);
  }
}

void CacheLevel::load_state(util::ckpt::Reader& r) {
  const std::uint32_t sets = r.get_u32();
  const std::uint32_t ways = r.get_u32();
  if (sets != sets_ || ways != ways_) {
    throw util::ckpt::CkptError(
        "cache", "geometry mismatch: checkpoint has " + std::to_string(sets) +
                     "x" + std::to_string(ways) + ", configured " +
                     std::to_string(sets_) + "x" + std::to_string(ways_));
  }
  tick_ = r.get_u64();
  dirty_evictions_ = r.get_u64();
  for (Way& way : ways_storage_) {
    way.tag = r.get_u64();
    way.lru = r.get_u64();
    way.owner = r.get_u32();
    way.valid = r.get_bool();
    way.dirty = r.get_bool();
  }
}

void CacheHierarchy::save_state(util::ckpt::Writer& w) const {
  l1_.save_state(w);
  l2_.save_state(w);
  w.put_u64(prefetch_fills_);
  w.put_u64(last_demand_line_);
}

void CacheHierarchy::load_state(util::ckpt::Reader& r) {
  l1_.load_state(r);
  l2_.load_state(r);
  prefetch_fills_ = r.get_u64();
  last_demand_line_ = r.get_u64();
}

}  // namespace tmprof::mem
