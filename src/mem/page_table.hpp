#pragma once
/// \file page_table.hpp
/// 4-level radix page table (PML4 → PDPT → PD → PT), one per process.
/// Leaves live at the PT level (4 KiB pages) or at the PD level (2 MiB huge
/// pages, PS bit set). The table exposes an `mm_walk`-style in-order visitor
/// used by the A-bit scanner.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "mem/addr.hpp"
#include "mem/pte.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::mem {

/// Result of resolving a virtual address to its leaf PTE.
struct PteRef {
  Pte* pte = nullptr;          ///< nullptr when the address is unmapped
  PageSize size = PageSize::k4K;
  VirtAddr page_va = 0;        ///< base virtual address of the mapping

  [[nodiscard]] explicit operator bool() const noexcept {
    return pte != nullptr;
  }
};

/// Per-process radix page table.
///
/// Invariant maintained with the TLB: any call that *changes a translation*
/// (map/unmap/remap) must be followed by a TLB shootdown by the caller;
/// calls that only change A/D/poison bits need not be (that is the paper's
/// no-shootdown optimization and its staleness window).
class PageTable {
 public:
  PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  PageTable(PageTable&&) noexcept = default;
  PageTable& operator=(PageTable&&) noexcept = default;
  ~PageTable() = default;

  /// Map a page. `vaddr` must be aligned to the page size; the range must
  /// not already be mapped (at any size).
  void map(VirtAddr vaddr, Pfn pfn, PageSize size, bool writable = true);

  /// Remove a mapping; returns the old PTE. The page must be mapped at
  /// exactly this base address. Radix nodes left empty are freed (as
  /// kernels free empty page-table pages), so a later huge mapping can
  /// cover a range whose 4 KiB mappings were all removed.
  Pte unmap(VirtAddr vaddr);

  /// Resolve to the leaf PTE covering `vaddr` (any alignment), or a null ref.
  [[nodiscard]] PteRef resolve(VirtAddr vaddr);

  /// In-order visit of every present leaf PTE (the `mm_walk` analog).
  /// The callback may mutate flag bits but must not remap.
  using PteVisitor = std::function<void(VirtAddr page_va, PageSize, Pte&)>;
  void walk(const PteVisitor& visit);

  /// Templated walk: the visitor is a plain callable invoked directly, so
  /// the per-leaf call inlines instead of going through std::function's
  /// dispatch. Same visit order and mutation rules as walk(); use this on
  /// hot scan paths (the A-bit scanner visits every leaf every epoch).
  template <typename Visit>
  void walk_fn(Visit&& visit) {
    walk_node_fn(*root_, 0, 0, visit);
  }

  /// Checkpoint hooks: leaves are saved as (page_va, size, raw bits) and
  /// re-mapped on load, which rebuilds the identical minimal radix (unmap
  /// prunes empty nodes, so live structure is always minimal).
  void save_state(util::ckpt::Writer& w);
  void load_state(util::ckpt::Reader& r);

  /// Number of radix nodes currently allocated (cost model for walks).
  [[nodiscard]] std::uint64_t node_count() const noexcept { return nodes_; }
  /// Present leaf counts by size.
  [[nodiscard]] std::uint64_t mapped_4k() const noexcept { return mapped_4k_; }
  [[nodiscard]] std::uint64_t mapped_2m() const noexcept { return mapped_2m_; }
  /// Total mapped bytes.
  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept {
    return mapped_4k_ * kPageSize + mapped_2m_ * kHugePageSize;
  }

 private:
  static constexpr unsigned kRadixBits = 9;
  static constexpr std::size_t kFanout = 1ULL << kRadixBits;
  // Shifts of the index fields for levels 0 (PML4) .. 3 (PT).
  static constexpr unsigned kLevelShift[4] = {39, 30, 21, 12};

  struct Node {
    std::array<Pte, kFanout> entries{};
    std::array<std::unique_ptr<Node>, kFanout> children{};
  };

  static constexpr std::size_t index_at(VirtAddr vaddr, unsigned level) {
    return (vaddr >> kLevelShift[level]) & (kFanout - 1);
  }

  Node* descend(VirtAddr vaddr, unsigned target_level, bool create);

  template <typename Visit>
  void walk_node_fn(Node& node, unsigned level, VirtAddr base, Visit& visit) {
    for (std::size_t idx = 0; idx < kFanout; ++idx) {
      const VirtAddr va =
          base + (static_cast<VirtAddr>(idx) << kLevelShift[level]);
      Pte& entry = node.entries[idx];
      if (entry.present()) {
        visit(va, level == 2 ? PageSize::k2M : PageSize::k4K, entry);
      } else if (level < 3 && node.children[idx]) {
        walk_node_fn(*node.children[idx], level + 1, va, visit);
      }
    }
  }
  /// Clears the leaf covering `vaddr` under `node`; returns whether `node`
  /// is now empty (no present entries, no children) and prunes below.
  bool unmap_rec(Node& node, unsigned level, VirtAddr vaddr, Pte& removed);

  std::unique_ptr<Node> root_;
  std::uint64_t nodes_ = 1;
  std::uint64_t mapped_4k_ = 0;
  std::uint64_t mapped_2m_ = 0;
};

}  // namespace tmprof::mem
