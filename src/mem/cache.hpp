#pragma once
/// \file cache.hpp
/// Set-associative cache hierarchy (L1D, L2 per core; shared LLC), plus a
/// simple next-line prefetcher. The hierarchy determines each access's
/// *data source*, which the IBS/PEBS models record: TMP only counts trace
/// samples whose data source is beyond the LLC (Section III-A).

#include <cstdint>
#include <vector>

#include "mem/addr.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::mem {

/// Where a load/store was serviced from.
enum class DataSource : std::uint8_t { L1, L2, LLC, MemTier1, MemTier2 };

[[nodiscard]] constexpr bool is_memory(DataSource src) noexcept {
  return src == DataSource::MemTier1 || src == DataSource::MemTier2;
}

[[nodiscard]] constexpr const char* to_string(DataSource src) noexcept {
  switch (src) {
    case DataSource::L1: return "L1";
    case DataSource::L2: return "L2";
    case DataSource::LLC: return "LLC";
    case DataSource::MemTier1: return "MemT1";
    case DataSource::MemTier2: return "MemT2";
  }
  return "?";
}

/// One set-associative, write-allocate cache level with LRU replacement.
/// Tags are physical line addresses.
class CacheLevel {
 public:
  CacheLevel(std::uint64_t size_bytes, std::uint32_t ways);

  /// True if the line holding `paddr` is resident (updates LRU).
  bool access(PhysAddr paddr, bool is_store);

  /// Install the line; returns true if a valid line was evicted.
  /// `owner` tags the line with an RMID-like id (resource-monitoring
  /// support, cf. Intel CMT / AMD QoS); 0 = untracked.
  bool fill(PhysAddr paddr, std::uint32_t owner = 0);

  /// Is the line present (no LRU update)? Used by tests and the prefetcher.
  [[nodiscard]] bool contains(PhysAddr paddr) const;

  /// Resident lines tagged with `owner` (cache-occupancy monitoring).
  [[nodiscard]] std::uint64_t occupancy_lines(std::uint32_t owner) const;

  void flush();

  /// Checkpoint hooks (util/ckpt.hpp): geometry comes from config, so only
  /// dynamic state (LRU clock, way contents) is serialized.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

  [[nodiscard]] std::uint64_t size_bytes() const noexcept {
    return static_cast<std::uint64_t>(sets_) * ways_ * kLineSize;
  }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint64_t dirty_evictions() const noexcept {
    return dirty_evictions_;
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    std::uint32_t owner = 0;  ///< RMID-like tag for occupancy monitoring
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::size_t set_of(std::uint64_t line) const noexcept {
    return static_cast<std::size_t>(line & (sets_ - 1));
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t dirty_evictions_ = 0;
  std::vector<Way> ways_storage_;
};

/// Result of a full hierarchy access.
struct CacheAccess {
  DataSource source = DataSource::L1;  ///< MemTier resolved by caller
  bool llc_miss = false;
  bool prefetch_issued = false;
};

/// Per-core private levels; the shared LLC is passed in by the System.
class CacheHierarchy {
 public:
  /// \param l1_bytes/l2_bytes  private level sizes
  /// \param llc                shared last-level cache (not owned)
  CacheHierarchy(std::uint64_t l1_bytes, std::uint32_t l1_ways,
                 std::uint64_t l2_bytes, std::uint32_t l2_ways,
                 CacheLevel* llc, bool enable_prefetch);

  /// Zen-2-like geometry: 32 KiB/8w L1D, 512 KiB/8w L2.
  static CacheHierarchy make_default(CacheLevel* llc,
                                     bool enable_prefetch = true);

  /// Run one demand access through L1 → L2 → LLC. On an LLC miss the line is
  /// filled into all levels and, if enabled, the next line is prefetched
  /// into the LLC (so a subsequent demand access to it is an LLC *hit* —
  /// this is why TMP deliberately profiles demand loads only).
  /// `owner` tags LLC fills for occupancy monitoring.
  CacheAccess access(PhysAddr paddr, bool is_store, std::uint32_t owner = 0);

  void flush();

  /// Checkpoint hooks. The shared LLC is serialized by its owner (System),
  /// not here.
  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r);

  [[nodiscard]] std::uint64_t prefetch_fills() const noexcept {
    return prefetch_fills_;
  }

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  CacheLevel* llc_;
  bool prefetch_;
  std::uint64_t prefetch_fills_ = 0;
  std::uint64_t last_demand_line_ = ~0ULL;
};

}  // namespace tmprof::mem
