#include "mem/ptw.hpp"

namespace tmprof::mem {

WalkResult PageTableWalker::walk(PageTable& table, VirtAddr vaddr,
                                 bool is_store, bool honor_poison) {
  WalkResult result;
  PteRef ref = table.resolve(vaddr);
  if (!ref) {
    result.status = WalkResult::Status::NotPresent;
    // A full miss walks all four levels before discovering the hole.
    result.levels = 4;
    return result;
  }
  result.pte = ref.pte;
  result.size = ref.size;
  result.page_va = ref.page_va;
  result.levels = ref.size == PageSize::k4K ? 4U : 3U;
  if (honor_poison && ref.pte->poisoned()) {
    result.status = WalkResult::Status::Poisoned;
    return result;
  }
  result.status = WalkResult::Status::Ok;
  result.pfn = ref.pte->pfn();
  if (!ref.pte->accessed()) {
    ref.pte->set_accessed(true);
    result.set_accessed = true;
  }
  if (is_store && !ref.pte->dirty()) {
    ref.pte->set_dirty(true);
    result.set_dirty = true;
  }
  return result;
}

}  // namespace tmprof::mem
