#include "mem/tlb.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::mem {

namespace {
constexpr bool is_pow2(std::uint32_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

TlbArray::TlbArray(std::uint32_t sets, std::uint32_t ways, PageSize size)
    : sets_(sets), ways_(ways), size_(size),
      entries_(static_cast<std::size_t>(sets) * ways) {
  TMPROF_EXPECTS(is_pow2(sets));
  TMPROF_EXPECTS(ways >= 1);
}

std::size_t TlbArray::set_of(Pid pid, Vpn vpn) const noexcept {
  // Mix the PID in so multi-process runs don't alias set 0 pathologically.
  const std::uint64_t h = vpn ^ (static_cast<std::uint64_t>(pid) << 17);
  return static_cast<std::size_t>(h & (sets_ - 1));
}

TlbArray::Entry* TlbArray::lookup(Pid pid, Vpn vpn) {
  Entry* base = &entries_[set_of(pid, vpn) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = base[w];
    if (e.valid && e.pid == pid && e.vpn == vpn) {
      e.lru = ++tick_;
      return &e;
    }
  }
  return nullptr;
}

TlbArray::Entry TlbArray::insert(Pid pid, Vpn vpn, Pte* pte, bool dirty) {
  Entry* base = &entries_[set_of(pid, vpn) * ways_];
  Entry* victim = &base[0];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = base[w];
    if (e.valid && e.pid == pid && e.vpn == vpn) {
      victim = &e;  // refill in place
      break;
    }
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  const Entry evicted = victim->valid ? *victim : Entry{};
  victim->pid = pid;
  victim->vpn = vpn;
  victim->pte = pte;
  victim->dirty_cached = dirty;
  victim->valid = true;
  victim->lru = ++tick_;
  return evicted;
}

void TlbArray::invalidate_page(Pid pid, Vpn vpn) {
  Entry* base = &entries_[set_of(pid, vpn) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Entry& e = base[w];
    if (e.valid && e.pid == pid && e.vpn == vpn) e.valid = false;
  }
}

void TlbArray::invalidate_pid(Pid pid) {
  for (Entry& e : entries_) {
    if (e.valid && e.pid == pid) e.valid = false;
  }
}

void TlbArray::flush() {
  for (Entry& e : entries_) e.valid = false;
}

std::uint64_t TlbArray::valid_entries() const noexcept {
  std::uint64_t n = 0;
  for (const Entry& e : entries_) n += e.valid ? 1 : 0;
  return n;
}

namespace {
constexpr Vpn size_vpn(VirtAddr vaddr, PageSize size) {
  return vaddr >> (size == PageSize::k4K ? kPageShift : kHugePageShift);
}
}  // namespace

Tlb::Tlb(const TlbLevelConfig& l1, const TlbLevelConfig& l2)
    : l1_4k_(l1.sets_4k, l1.ways_4k, PageSize::k4K),
      l1_2m_(l1.sets_2m, l1.ways_2m, PageSize::k2M),
      l2_4k_(l2.sets_4k, l2.ways_4k, PageSize::k4K),
      l2_2m_(l2.sets_2m, l2.ways_2m, PageSize::k2M) {}

Tlb Tlb::make_default() {
  // L1 dTLB: 64 entries (4K, full ≈ 1x64 modeled as 16 sets x 4),
  //          32 entries (2M). L2 STLB: 2048 x 8-way (4K), 128 x 4 (2M).
  return Tlb(TlbLevelConfig{16, 4, 8, 4}, TlbLevelConfig{256, 8, 32, 4});
}

Tlb::LookupResult Tlb::lookup(Pid pid, VirtAddr vaddr) {
  const Vpn v4 = size_vpn(vaddr, PageSize::k4K);
  const Vpn v2 = size_vpn(vaddr, PageSize::k2M);
  if (TlbArray::Entry* e = l1_4k_.lookup(pid, v4)) {
    return {TlbHit::L1, e, PageSize::k4K};
  }
  if (TlbArray::Entry* e = l1_2m_.lookup(pid, v2)) {
    return {TlbHit::L1, e, PageSize::k2M};
  }
  if (TlbArray::Entry* e = l2_4k_.lookup(pid, v4)) {
    l1_4k_.insert(pid, v4, e->pte, e->dirty_cached);
    return {TlbHit::L2, l1_4k_.lookup(pid, v4), PageSize::k4K};
  }
  if (TlbArray::Entry* e = l2_2m_.lookup(pid, v2)) {
    l1_2m_.insert(pid, v2, e->pte, e->dirty_cached);
    return {TlbHit::L2, l1_2m_.lookup(pid, v2), PageSize::k2M};
  }
  return {TlbHit::Miss, nullptr, PageSize::k4K};
}

TlbArray::Entry* Tlb::fill(Pid pid, VirtAddr page_va, PageSize size, Pte* pte,
                           bool dirty) {
  const Vpn vpn = size_vpn(page_va, size);
  if (size == PageSize::k4K) {
    l2_4k_.insert(pid, vpn, pte, dirty);
    l1_4k_.insert(pid, vpn, pte, dirty);
    return l1_4k_.lookup(pid, vpn);
  }
  l2_2m_.insert(pid, vpn, pte, dirty);
  l1_2m_.insert(pid, vpn, pte, dirty);
  return l1_2m_.lookup(pid, vpn);
}

void Tlb::invalidate_page(Pid pid, VirtAddr page_va, PageSize size) {
  const Vpn vpn = size_vpn(page_va, size);
  if (size == PageSize::k4K) {
    l1_4k_.invalidate_page(pid, vpn);
    l2_4k_.invalidate_page(pid, vpn);
  } else {
    l1_2m_.invalidate_page(pid, vpn);
    l2_2m_.invalidate_page(pid, vpn);
  }
}

void Tlb::invalidate_pid(Pid pid) {
  l1_4k_.invalidate_pid(pid);
  l1_2m_.invalidate_pid(pid);
  l2_4k_.invalidate_pid(pid);
  l2_2m_.invalidate_pid(pid);
}

void Tlb::flush() {
  l1_4k_.flush();
  l1_2m_.flush();
  l2_4k_.flush();
  l2_2m_.flush();
}

std::uint64_t Tlb::valid_entries() const noexcept {
  return l1_4k_.valid_entries() + l1_2m_.valid_entries() +
         l2_4k_.valid_entries() + l2_2m_.valid_entries();
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void TlbArray::save_state(util::ckpt::Writer& w) const {
  w.put_u32(sets_);
  w.put_u32(ways_);
  w.put_u64(tick_);
  for (const Entry& e : entries_) {
    w.put_u64(e.pid);
    w.put_u64(e.vpn);
    w.put_bool(e.dirty_cached);
    w.put_bool(e.valid);
    w.put_u64(e.lru);
  }
}

void TlbArray::load_state(util::ckpt::Reader& r, const PteResolver& resolve) {
  const std::uint32_t sets = r.get_u32();
  const std::uint32_t ways = r.get_u32();
  if (sets != sets_ || ways != ways_) {
    throw util::ckpt::CkptError(
        "tlb", "geometry mismatch: checkpoint has " + std::to_string(sets) +
                   "x" + std::to_string(ways) + ", configured " +
                   std::to_string(sets_) + "x" + std::to_string(ways_));
  }
  tick_ = r.get_u64();
  for (Entry& e : entries_) {
    e.pid = static_cast<Pid>(r.get_u64());
    e.vpn = r.get_u64();
    e.dirty_cached = r.get_bool();
    e.valid = r.get_bool();
    e.lru = r.get_u64();
    // Cached PTE pointers are process-local heap addresses; rebind against
    // the freshly rebuilt page tables. A valid entry whose translation no
    // longer exists would be a checkpoint/page-table inconsistency.
    e.pte = e.valid ? resolve(e.pid, e.vpn, size_) : nullptr;
    if (e.valid && e.pte == nullptr) {
      throw util::ckpt::CkptError(
          "tlb", "entry references unmapped page (pid " +
                     std::to_string(e.pid) + ", vpn " + std::to_string(e.vpn) +
                     ")");
    }
  }
}

void Tlb::save_state(util::ckpt::Writer& w) const {
  l1_4k_.save_state(w);
  l1_2m_.save_state(w);
  l2_4k_.save_state(w);
  l2_2m_.save_state(w);
}

void Tlb::load_state(util::ckpt::Reader& r,
                     const TlbArray::PteResolver& resolve) {
  l1_4k_.load_state(r, resolve);
  l1_2m_.load_state(r, resolve);
  l2_4k_.load_state(r, resolve);
  l2_2m_.load_state(r, resolve);
}

}  // namespace tmprof::mem
