#pragma once
/// \file addr.hpp
/// Address-space constants and strong-ish aliases shared by the whole
/// simulator. We model a 48-bit x86-64-style virtual address space with
/// 4 KiB base pages and 2 MiB huge pages (Linux THP backs large anonymous
/// HPC heaps with 2 MiB pages, which is essential to reproducing the paper's
/// Table IV page counts).

#include <cstdint>

namespace tmprof::mem {

using VirtAddr = std::uint64_t;
using PhysAddr = std::uint64_t;
/// Virtual page number: vaddr >> kPageShift (always 4 KiB granularity).
using Vpn = std::uint64_t;
/// Physical frame number: paddr >> kPageShift (always 4 KiB granularity).
using Pfn = std::uint64_t;
using Pid = std::uint32_t;

inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ULL << kPageShift;
inline constexpr unsigned kHugePageShift = 21;
inline constexpr std::uint64_t kHugePageSize = 1ULL << kHugePageShift;
/// 4 KiB pages per 2 MiB huge page.
inline constexpr std::uint64_t kPagesPerHuge = kHugePageSize / kPageSize;

inline constexpr unsigned kLineShift = 6;
inline constexpr std::uint64_t kLineSize = 1ULL << kLineShift;

inline constexpr unsigned kVirtAddrBits = 48;

enum class PageSize : std::uint8_t { k4K, k2M };

constexpr std::uint64_t page_bytes(PageSize size) noexcept {
  return size == PageSize::k4K ? kPageSize : kHugePageSize;
}

constexpr std::uint64_t pages_in(PageSize size) noexcept {
  return size == PageSize::k4K ? 1 : kPagesPerHuge;
}

constexpr Vpn vpn_of(VirtAddr vaddr) noexcept { return vaddr >> kPageShift; }
constexpr Pfn pfn_of(PhysAddr paddr) noexcept { return paddr >> kPageShift; }

constexpr VirtAddr page_base(VirtAddr vaddr, PageSize size) noexcept {
  return vaddr & ~(page_bytes(size) - 1);
}

constexpr std::uint64_t page_offset(VirtAddr vaddr, PageSize size) noexcept {
  return vaddr & (page_bytes(size) - 1);
}

constexpr std::uint64_t line_of(PhysAddr paddr) noexcept {
  return paddr >> kLineShift;
}

constexpr bool is_huge_aligned(VirtAddr vaddr) noexcept {
  return (vaddr & (kHugePageSize - 1)) == 0;
}

}  // namespace tmprof::mem
