#pragma once
/// \file ptw.hpp
/// Hardware page-table walker model. The PTW is the *only* agent that sets
/// the A bit, which is what gives A-bit profiling its TLB-miss-only
/// visibility (Section II-B). D bits are set on stores even on TLB hits —
/// that path is handled by the access engine, not here.

#include <cstdint>

#include "mem/addr.hpp"
#include "mem/page_table.hpp"

namespace tmprof::mem {

/// Outcome of one hardware walk.
struct WalkResult {
  enum class Status : std::uint8_t {
    Ok,          ///< translation found
    NotPresent,  ///< page fault: no mapping
    Poisoned,    ///< protection fault: BadgerTrap reserved-bit set
  };

  Status status = Status::NotPresent;
  Pte* pte = nullptr;
  PageSize size = PageSize::k4K;
  VirtAddr page_va = 0;
  Pfn pfn = 0;            ///< head frame of the page (4 KiB granularity)
  bool set_accessed = false;  ///< this walk flipped A from 0 to 1
  bool set_dirty = false;     ///< this walk flipped D from 0 to 1
  std::uint32_t levels = 0;   ///< radix levels touched (walk cost)
};

/// Stateless walker; per-walk statistics are kept by the caller's PMU.
class PageTableWalker {
 public:
  /// Walk `table` for `vaddr`. On success sets A (and D for stores) in the
  /// leaf PTE. If the PTE is poisoned the walk reports a protection fault
  /// and does NOT touch A/D (the fault fires before retirement).
  ///
  /// \param honor_poison  BadgerTrap's handler re-walks with this false to
  ///                      install the translation it just unpoisoned.
  static WalkResult walk(PageTable& table, VirtAddr vaddr, bool is_store,
                         bool honor_poison = true);
};

}  // namespace tmprof::mem
