#pragma once
/// \file tlb.hpp
/// Per-core two-level TLB with split 4 KiB / 2 MiB arrays, modeled after the
/// Zen 2 part the paper measures on. The TLB is the source of the paper's
/// A-bit *staleness window*: after the scanner clears an A bit without a
/// shootdown, a still-resident entry keeps translating and the PTW (the only
/// agent that sets A) is never invoked until the entry is evicted.
///
/// Entries cache a pointer to their leaf PTE. This is safe because every
/// translation *change* (unmap, migration remap) performs a shootdown
/// through invalidate_page()/flush(), exactly as real kernels must.

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/addr.hpp"
#include "mem/pte.hpp"

namespace tmprof::util::ckpt {
class Reader;
class Writer;
}  // namespace tmprof::util::ckpt

namespace tmprof::mem {

/// Where a translation was found.
enum class TlbHit : std::uint8_t { L1, L2, Miss };

/// One set-associative TLB array for a single page size.
class TlbArray {
 public:
  /// \param sets  number of sets (power of two)
  /// \param ways  associativity
  /// \param size  page size this array translates
  TlbArray(std::uint32_t sets, std::uint32_t ways, PageSize size);

  struct Entry {
    Pid pid = 0;
    Vpn vpn = 0;           ///< page-size-aligned virtual page number
    Pte* pte = nullptr;    ///< leaf PTE backing this entry
    bool dirty_cached = false;  ///< D bit as cached at fill time
    bool valid = false;
    std::uint64_t lru = 0;
  };

  /// Find a valid entry; updates LRU on hit.
  Entry* lookup(Pid pid, Vpn vpn);
  /// Insert (possibly evicting LRU); returns the evicted entry if any.
  Entry insert(Pid pid, Vpn vpn, Pte* pte, bool dirty);

  void invalidate_page(Pid pid, Vpn vpn);
  void invalidate_pid(Pid pid);
  void flush();

  /// Rebinds an entry's cached PTE pointer on restore: entries are saved as
  /// (pid, vpn) and must be re-resolved against the rebuilt page tables.
  using PteResolver = std::function<Pte*(Pid, Vpn, PageSize)>;

  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r, const PteResolver& resolve);

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return sets_ * ways_;
  }
  [[nodiscard]] PageSize page_size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t valid_entries() const noexcept;

 private:
  [[nodiscard]] std::size_t set_of(Pid pid, Vpn vpn) const noexcept;

  std::uint32_t sets_;
  std::uint32_t ways_;
  PageSize size_;
  std::uint64_t tick_ = 0;
  std::vector<Entry> entries_;
};

/// Geometry of one TLB level.
struct TlbLevelConfig {
  std::uint32_t sets_4k;
  std::uint32_t ways_4k;
  std::uint32_t sets_2m;
  std::uint32_t ways_2m;
};

/// Two-level TLB (L1 dTLB + L2 STLB) for one core.
class Tlb {
 public:
  Tlb(const TlbLevelConfig& l1, const TlbLevelConfig& l2);

  /// Zen-2-like default geometry.
  static Tlb make_default();

  struct LookupResult {
    TlbHit level = TlbHit::Miss;
    TlbArray::Entry* entry = nullptr;  ///< valid when level != Miss
    PageSize size = PageSize::k4K;     ///< page size of the hit entry
  };

  /// Look up a translation for `vaddr`. On an L2 hit the entry is promoted
  /// into L1 (the promoted entry is returned).
  LookupResult lookup(Pid pid, VirtAddr vaddr);

  /// Fill both levels after a page walk.
  TlbArray::Entry* fill(Pid pid, VirtAddr page_va, PageSize size, Pte* pte,
                        bool dirty);

  /// Targeted shootdown of one translation.
  void invalidate_page(Pid pid, VirtAddr page_va, PageSize size);
  /// Shootdown of every translation of a process.
  void invalidate_pid(Pid pid);
  void flush();

  void save_state(util::ckpt::Writer& w) const;
  void load_state(util::ckpt::Reader& r, const TlbArray::PteResolver& resolve);

  [[nodiscard]] std::uint64_t valid_entries() const noexcept;

 private:
  TlbArray l1_4k_;
  TlbArray l1_2m_;
  TlbArray l2_4k_;
  TlbArray l2_2m_;
};

}  // namespace tmprof::mem
