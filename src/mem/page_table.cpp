#include "mem/page_table.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::mem {

PageTable::PageTable() : root_(std::make_unique<Node>()) {}

PageTable::Node* PageTable::descend(VirtAddr vaddr, unsigned target_level,
                                    bool create) {
  TMPROF_EXPECTS(target_level <= 3);
  Node* node = root_.get();
  for (unsigned level = 0; level < target_level; ++level) {
    const std::size_t idx = index_at(vaddr, level);
    // A present entry at a non-target level would be a conflicting huge leaf.
    TMPROF_ASSERT(!node->entries[idx].present());
    auto& child = node->children[idx];
    if (!child) {
      if (!create) return nullptr;
      child = std::make_unique<Node>();
      ++nodes_;
    }
    node = child.get();
  }
  return node;
}

void PageTable::map(VirtAddr vaddr, Pfn pfn, PageSize size, bool writable) {
  TMPROF_EXPECTS(page_offset(vaddr, size) == 0);
  TMPROF_EXPECTS(vaddr < (1ULL << kVirtAddrBits));
  const unsigned leaf_level = size == PageSize::k4K ? 3U : 2U;
  Node* node = descend(vaddr, leaf_level, /*create=*/true);
  const std::size_t idx = index_at(vaddr, leaf_level);
  Pte& pte = node->entries[idx];
  TMPROF_EXPECTS(!pte.present());
  // A huge leaf may not overlap an existing PT subtree.
  if (size == PageSize::k2M) TMPROF_EXPECTS(!node->children[idx]);
  pte = Pte{};
  pte.set_pfn(pfn);
  pte.set_present(true);
  pte.set_writable(writable);
  pte.set_huge(size == PageSize::k2M);
  if (size == PageSize::k4K) ++mapped_4k_;
  else ++mapped_2m_;
}

Pte PageTable::unmap(VirtAddr vaddr) {
  const PteRef ref = resolve(vaddr);
  TMPROF_EXPECTS(ref && ref.page_va == vaddr);
  if (ref.size == PageSize::k4K) --mapped_4k_;
  else --mapped_2m_;
  Pte removed;
  unmap_rec(*root_, 0, vaddr, removed);
  return removed;
}

bool PageTable::unmap_rec(Node& node, unsigned level, VirtAddr vaddr,
                          Pte& removed) {
  const std::size_t idx = index_at(vaddr, level);
  if (node.entries[idx].present()) {
    removed = node.entries[idx];
    node.entries[idx] = Pte{};
  } else {
    TMPROF_ASSERT(level < 3 && node.children[idx]);
    if (unmap_rec(*node.children[idx], level + 1, vaddr, removed)) {
      node.children[idx].reset();
      --nodes_;
    }
  }
  for (std::size_t i = 0; i < kFanout; ++i) {
    if (node.entries[i].present() || node.children[i]) return false;
  }
  return true;
}

PteRef PageTable::resolve(VirtAddr vaddr) {
  Node* node = root_.get();
  for (unsigned level = 0;; ++level) {
    const std::size_t idx = index_at(vaddr, level);
    Pte& entry = node->entries[idx];
    if (entry.present()) {
      const PageSize size = level == 2 ? PageSize::k2M : PageSize::k4K;
      TMPROF_ASSERT(level == 3 || (level == 2 && entry.huge()));
      return PteRef{&entry, size, page_base(vaddr, size)};
    }
    if (level == 3 || !node->children[idx]) return PteRef{};
    node = node->children[idx].get();
  }
}

void PageTable::walk(const PteVisitor& visit) {
  walk_fn([&visit](VirtAddr page_va, PageSize size, Pte& pte) {
    visit(page_va, size, pte);
  });
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void PageTable::save_state(util::ckpt::Writer& w) {
  w.put_u64(mapped_4k_ + mapped_2m_);
  walk([&](VirtAddr page_va, PageSize size, Pte& pte) {
    w.put_u64(page_va);
    w.put_u8(static_cast<std::uint8_t>(size));
    w.put_u64(pte.raw());
  });
}

void PageTable::load_state(util::ckpt::Reader& r) {
  root_ = std::make_unique<Node>();
  nodes_ = 1;
  mapped_4k_ = 0;
  mapped_2m_ = 0;
  const std::uint64_t leaves = r.get_u64();
  for (std::uint64_t i = 0; i < leaves; ++i) {
    const VirtAddr page_va = r.get_u64();
    const auto size = static_cast<PageSize>(r.get_u8());
    const std::uint64_t raw = r.get_u64();
    Pte probe;
    probe.set_raw(raw);
    // map() establishes the leaf (and radix path); then the exact saved
    // bits overwrite it so A/D/poison flags survive the round trip.
    map(page_va, probe.pfn(), size, probe.writable());
    const PteRef ref = resolve(page_va);
    TMPROF_ASSERT(ref);
    ref.pte->set_raw(raw);
  }
}

}  // namespace tmprof::mem
