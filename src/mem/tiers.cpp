#include "mem/tiers.hpp"

#include "util/assert.hpp"
#include "util/ckpt.hpp"

namespace tmprof::mem {

PhysMemory::PhysMemory(std::vector<TierSpec> tiers, std::uint32_t arenas)
    : arenas_(arenas) {
  TMPROF_EXPECTS(!tiers.empty());
  TMPROF_EXPECTS(arenas >= 1);
  Pfn base = 0;
  for (auto& spec : tiers) {
    TMPROF_EXPECTS(spec.frames > 0);
    TierState state;
    state.spec = std::move(spec);
    state.base = base;
    const Pfn top = base + state.spec.frames;
    // Slice the tier into `arenas` contiguous ranges; the last arena takes
    // the remainder. Boundaries depend only on (frames, arenas), so the
    // carve is reproducible across runs and thread counts.
    const std::uint64_t per_arena = state.spec.frames / arenas;
    state.arenas.resize(arenas);
    for (std::uint32_t a = 0; a < arenas; ++a) {
      ArenaState& arena = state.arenas[a];
      arena.base = base + a * per_arena;
      arena.top = (a + 1 == arenas) ? top : arena.base + per_arena;
      arena.low_bump = arena.base;
      // Huge pages are carved downward from the arena top; the floor starts
      // at the (possibly unaligned) top and each carve aligns itself.
      arena.high_bump = arena.top;
    }
    base = top;
    tiers_.push_back(std::move(state));
  }
  total_frames_ = base;
  frames_.resize(total_frames_);
}

const TierSpec& PhysMemory::tier(TierId id) const {
  TMPROF_EXPECTS(id < tiers_.size());
  return tiers_[id].spec;
}

TierId PhysMemory::tier_of(Pfn pfn) const {
  TMPROF_EXPECTS(pfn < total_frames_);
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (pfn < tiers_[i].base + tiers_[i].spec.frames) {
      return static_cast<TierId>(i);
    }
  }
  TMPROF_ASSERT(false);
  return 0;
}

std::optional<Pfn> PhysMemory::take(ArenaState& arena, PageSize size) {
  if (size == PageSize::k4K) {
    if (!arena.free_4k.empty()) {
      const Pfn pfn = arena.free_4k.back();
      arena.free_4k.pop_back();
      return pfn;
    }
    // The low bump may not cross into the huge-page region carved above.
    if (arena.low_bump < arena.high_bump) return arena.low_bump++;
    return std::nullopt;
  }
  if (!arena.free_2m.empty()) {
    const Pfn pfn = arena.free_2m.back();
    arena.free_2m.pop_back();
    return pfn;
  }
  // Carve a 512-aligned chunk just below the current huge-page floor.
  if (arena.high_bump >= kPagesPerHuge) {
    const Pfn candidate = (arena.high_bump - kPagesPerHuge) &
                          ~(kPagesPerHuge - 1);
    if (candidate >= arena.low_bump && candidate >= arena.base) {
      arena.high_bump = candidate;
      return candidate;
    }
  }
  return std::nullopt;
}

std::optional<Pfn> PhysMemory::alloc(TierId preferred, Pid pid,
                                     VirtAddr page_va, PageSize size,
                                     std::uint32_t arena) {
  for (std::size_t i = preferred; i < tiers_.size(); ++i) {
    if (auto pfn =
            alloc_exact(static_cast<TierId>(i), pid, page_va, size, arena)) {
      return pfn;
    }
  }
  return std::nullopt;
}

std::optional<Pfn> PhysMemory::alloc_exact(TierId tier_id, Pid pid,
                                           VirtAddr page_va, PageSize size,
                                           std::uint32_t arena) {
  TMPROF_EXPECTS(tier_id < tiers_.size());
  TMPROF_EXPECTS(arena < arenas_);
  ArenaState& state = tiers_[tier_id].arenas[arena];
  const auto head = take(state, size);
  if (!head) return std::nullopt;
  const std::uint64_t span = pages_in(size);
  for (std::uint64_t i = 0; i < span; ++i) {
    FrameInfo& info = frames_[*head + i];
    TMPROF_ASSERT(!info.allocated);
    info.pid = pid;
    info.page_va = page_va;
    info.size = size;
    info.allocated = true;
    info.head = i == 0;
  }
  state.used += span;
  return head;
}

bool PhysMemory::rebalance_arenas(const std::vector<std::uint64_t>& weights) {
  TMPROF_EXPECTS(weights.size() == arenas_);
  std::uint64_t total_weight = 0;
  for (const std::uint64_t w : weights) total_weight += w;
  TMPROF_EXPECTS(total_weight > 0);
  for (const TierState& tier : tiers_) {
    for (const ArenaState& arena : tier.arenas) {
      if (arena.used != 0 || !arena.free_4k.empty() || !arena.free_2m.empty() ||
          arena.low_bump != arena.base || arena.high_bump != arena.top) {
        return false;
      }
    }
  }
  for (TierState& tier : tiers_) {
    const Pfn top = tier.base + tier.spec.frames;
    std::uint64_t prefix = 0;
    Pfn cursor = tier.base;
    for (std::uint32_t a = 0; a < arenas_; ++a) {
      prefix += weights[a];
      ArenaState& arena = tier.arenas[a];
      arena.base = cursor;
      // Cumulative proportional boundary: the per-arena frame counts sum
      // exactly to the tier size, with rounding spread deterministically.
      arena.top = (a + 1 == arenas_)
                      ? top
                      : tier.base + tier.spec.frames * prefix / total_weight;
      arena.low_bump = arena.base;
      arena.high_bump = arena.top;
      cursor = arena.top;
    }
  }
  return true;
}

void PhysMemory::free(Pfn head) {
  TMPROF_EXPECTS(head < total_frames_);
  FrameInfo& info = frames_[head];
  TMPROF_EXPECTS(info.allocated && info.head);
  const PageSize size = info.size;
  const std::uint64_t span = pages_in(size);
  for (std::uint64_t i = 0; i < span; ++i) {
    frames_[head + i] = FrameInfo{};
  }
  TierState& tier = tiers_[tier_of(head)];
  ArenaState* arena = &tier.arenas.front();
  for (ArenaState& candidate : tier.arenas) {
    if (head >= candidate.base && head < candidate.top) {
      arena = &candidate;
      break;
    }
  }
  arena->used -= span;
  if (size == PageSize::k4K) arena->free_4k.push_back(head);
  else arena->free_2m.push_back(head);
}

const FrameInfo& PhysMemory::frame(Pfn pfn) const {
  TMPROF_EXPECTS(pfn < total_frames_);
  return frames_[pfn];
}

std::uint64_t PhysMemory::free_frames(TierId tier) const {
  TMPROF_EXPECTS(tier < tiers_.size());
  return tiers_[tier].spec.frames - used_frames(tier);
}

std::uint64_t PhysMemory::used_frames(TierId tier) const {
  TMPROF_EXPECTS(tier < tiers_.size());
  std::uint64_t used = 0;
  for (const ArenaState& arena : tiers_[tier].arenas) used += arena.used;
  return used;
}


// ---------------------------------------------------------------------------
// Checkpoint hooks

void PhysMemory::save_state(util::ckpt::Writer& w) const {
  w.put_u32(static_cast<std::uint32_t>(tiers_.size()));
  w.put_u32(arenas_);
  w.put_u64(total_frames_);
  for (const TierState& tier : tiers_) {
    w.put_u64(tier.base);
    w.put_u32(static_cast<std::uint32_t>(tier.arenas.size()));
    for (const ArenaState& arena : tier.arenas) {
      w.put_u64(arena.base);
      w.put_u64(arena.top);
      w.put_u64(arena.low_bump);
      w.put_u64(arena.high_bump);
      w.put_u64(arena.used);
      w.put_u64(arena.free_4k.size());
      for (const Pfn pfn : arena.free_4k) w.put_u64(pfn);
      w.put_u64(arena.free_2m.size());
      for (const Pfn pfn : arena.free_2m) w.put_u64(pfn);
    }
  }
  // Frame map, sparse: only allocated frames differ from the default.
  std::uint64_t allocated = 0;
  for (const FrameInfo& f : frames_) allocated += f.allocated ? 1 : 0;
  w.put_u64(allocated);
  for (std::size_t pfn = 0; pfn < frames_.size(); ++pfn) {
    const FrameInfo& f = frames_[pfn];
    if (!f.allocated) continue;
    w.put_u64(pfn);
    w.put_u64(f.pid);
    w.put_u64(f.page_va);
    w.put_u8(static_cast<std::uint8_t>(f.size));
    w.put_bool(f.head);
  }
}

void PhysMemory::load_state(util::ckpt::Reader& r) {
  const std::uint32_t n_tiers = r.get_u32();
  const std::uint32_t arenas = r.get_u32();
  const std::uint64_t total = r.get_u64();
  if (n_tiers != tiers_.size() || arenas != arenas_ ||
      total != total_frames_) {
    throw util::ckpt::CkptError(
        "phys", "geometry mismatch: checkpoint has " + std::to_string(n_tiers) +
                    " tiers / " + std::to_string(arenas) + " arenas / " +
                    std::to_string(total) + " frames");
  }
  for (TierState& tier : tiers_) {
    tier.base = r.get_u64();
    const std::uint32_t n_arenas = r.get_u32();
    if (n_arenas != tier.arenas.size()) {
      throw util::ckpt::CkptError("phys", "arena count mismatch");
    }
    for (ArenaState& arena : tier.arenas) {
      arena.base = r.get_u64();
      arena.top = r.get_u64();
      arena.low_bump = r.get_u64();
      arena.high_bump = r.get_u64();
      arena.used = r.get_u64();
      arena.free_4k.resize(r.get_u64());
      for (Pfn& pfn : arena.free_4k) pfn = r.get_u64();
      arena.free_2m.resize(r.get_u64());
      for (Pfn& pfn : arena.free_2m) pfn = r.get_u64();
    }
  }
  for (FrameInfo& f : frames_) f = FrameInfo{};
  const std::uint64_t allocated = r.get_u64();
  for (std::uint64_t i = 0; i < allocated; ++i) {
    const std::uint64_t pfn = r.get_u64();
    if (pfn >= frames_.size()) {
      throw util::ckpt::CkptError("phys", "frame index out of range");
    }
    FrameInfo& f = frames_[pfn];
    f.pid = static_cast<Pid>(r.get_u64());
    f.page_va = r.get_u64();
    f.size = static_cast<PageSize>(r.get_u8());
    f.allocated = true;
    f.head = r.get_bool();
  }
}

}  // namespace tmprof::mem
