#include "mem/tiers.hpp"

#include "util/assert.hpp"

namespace tmprof::mem {

PhysMemory::PhysMemory(std::vector<TierSpec> tiers) {
  TMPROF_EXPECTS(!tiers.empty());
  Pfn base = 0;
  for (auto& spec : tiers) {
    TMPROF_EXPECTS(spec.frames > 0);
    TierState state;
    state.spec = std::move(spec);
    state.base = base;
    state.low_bump = base;
    // Huge pages are carved downward from the tier top; the floor starts at
    // the (possibly unaligned) top and each carve aligns itself.
    const Pfn top = base + state.spec.frames;
    state.high_bump = top;
    base = top;
    tiers_.push_back(std::move(state));
  }
  total_frames_ = base;
  frames_.resize(total_frames_);
}

const TierSpec& PhysMemory::tier(TierId id) const {
  TMPROF_EXPECTS(id < tiers_.size());
  return tiers_[id].spec;
}

TierId PhysMemory::tier_of(Pfn pfn) const {
  TMPROF_EXPECTS(pfn < total_frames_);
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (pfn < tiers_[i].base + tiers_[i].spec.frames) {
      return static_cast<TierId>(i);
    }
  }
  TMPROF_ASSERT(false);
  return 0;
}

std::optional<Pfn> PhysMemory::take(TierState& tier, PageSize size) {
  if (size == PageSize::k4K) {
    if (!tier.free_4k.empty()) {
      const Pfn pfn = tier.free_4k.back();
      tier.free_4k.pop_back();
      return pfn;
    }
    // The low bump may not cross into the huge-page region carved above.
    if (tier.low_bump < tier.high_bump) return tier.low_bump++;
    return std::nullopt;
  }
  if (!tier.free_2m.empty()) {
    const Pfn pfn = tier.free_2m.back();
    tier.free_2m.pop_back();
    return pfn;
  }
  // Carve a 512-aligned chunk just below the current huge-page floor.
  if (tier.high_bump >= kPagesPerHuge) {
    const Pfn candidate = (tier.high_bump - kPagesPerHuge) &
                          ~(kPagesPerHuge - 1);
    if (candidate >= tier.low_bump && candidate >= tier.base) {
      tier.high_bump = candidate;
      return candidate;
    }
  }
  return std::nullopt;
}

std::optional<Pfn> PhysMemory::alloc(TierId preferred, Pid pid,
                                     VirtAddr page_va, PageSize size) {
  for (std::size_t i = preferred; i < tiers_.size(); ++i) {
    if (auto pfn = alloc_exact(static_cast<TierId>(i), pid, page_va, size)) {
      return pfn;
    }
  }
  return std::nullopt;
}

std::optional<Pfn> PhysMemory::alloc_exact(TierId tier_id, Pid pid,
                                           VirtAddr page_va, PageSize size) {
  TMPROF_EXPECTS(tier_id < tiers_.size());
  TierState& tier = tiers_[tier_id];
  const auto head = take(tier, size);
  if (!head) return std::nullopt;
  const std::uint64_t span = pages_in(size);
  for (std::uint64_t i = 0; i < span; ++i) {
    FrameInfo& info = frames_[*head + i];
    TMPROF_ASSERT(!info.allocated);
    info.pid = pid;
    info.page_va = page_va;
    info.size = size;
    info.allocated = true;
    info.head = i == 0;
  }
  tier.used += span;
  return head;
}

void PhysMemory::free(Pfn head) {
  TMPROF_EXPECTS(head < total_frames_);
  FrameInfo& info = frames_[head];
  TMPROF_EXPECTS(info.allocated && info.head);
  const PageSize size = info.size;
  const std::uint64_t span = pages_in(size);
  for (std::uint64_t i = 0; i < span; ++i) {
    frames_[head + i] = FrameInfo{};
  }
  TierState& tier = tiers_[tier_of(head)];
  tier.used -= span;
  if (size == PageSize::k4K) tier.free_4k.push_back(head);
  else tier.free_2m.push_back(head);
}

const FrameInfo& PhysMemory::frame(Pfn pfn) const {
  TMPROF_EXPECTS(pfn < total_frames_);
  return frames_[pfn];
}

std::uint64_t PhysMemory::free_frames(TierId tier) const {
  TMPROF_EXPECTS(tier < tiers_.size());
  return tiers_[tier].spec.frames - tiers_[tier].used;
}

std::uint64_t PhysMemory::used_frames(TierId tier) const {
  TMPROF_EXPECTS(tier < tiers_.size());
  return tiers_[tier].used;
}

}  // namespace tmprof::mem
