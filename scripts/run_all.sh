#!/usr/bin/env bash
# Build, test, and regenerate every paper artifact in one go.
# Outputs land in test_output.txt / bench_output.txt at the repo root and
# the per-figure CSVs in the working directory.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "==================== ${b#build/bench/} ===================="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "Done. See test_output.txt, bench_output.txt, fig*_*.csv."
