#!/usr/bin/env bash
# Build, test, and regenerate every paper artifact in one go.
# Outputs land in test_output.txt / bench_output.txt at the repo root, the
# per-figure CSVs in the working directory, and the telemetry artifacts
# (Prometheus text + Chrome trace JSON per instrumented bench, see
# docs/OBSERVABILITY.md) under $TELEMETRY_DIR (default telemetry-out/).
set -euo pipefail

cd "$(dirname "$0")/.."

TELEMETRY_DIR="${TELEMETRY_DIR:-telemetry-out}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Every bench registered in bench/CMakeLists.txt must exist — a missing
# binary means the build silently dropped an artifact, so fail loudly
# instead of skipping it.
BENCHES=(
  fig2_ptw_ratio fig3_heatmap_ibs fig4_heatmap_abit fig5_cdf fig6_hitrate
  table4_detected_pages table_overhead table_speedup profiler_compare
  ablation_fusion ablation_epoch ablation_shootdown ablation_gating
  robustness chaos three_tier topology consolidation arch_compare
  micro_hotpath
)
missing=0
for b in "${BENCHES[@]}"; do
  if [ ! -x "build/bench/$b" ]; then
    echo "ERROR: bench binary build/bench/$b is missing" >&2
    missing=$((missing + 1))
  fi
done
if [ "$missing" -gt 0 ]; then
  echo "ERROR: $missing bench binaries missing — check the build log" >&2
  exit 1
fi

# Benches with telemetry plumbing export their own metrics + trace files.
declare -A TELEMETRY_FLAGS=(
  [table_speedup]=1 [fig6_hitrate]=1 [robustness]=1 [chaos]=1
  [table_overhead]=1
)
mkdir -p "$TELEMETRY_DIR"

{
  for b in "${BENCHES[@]}"; do
    echo "==================== $b ===================="
    if [ "${TELEMETRY_FLAGS[$b]:-0}" = "1" ]; then
      "build/bench/$b" \
        "--metrics-out=$TELEMETRY_DIR/$b.prom" \
        "--trace-out=$TELEMETRY_DIR/$b.trace.json"
    elif [ "$b" = "topology" ]; then
      # N-tier ladder x devmon ablation (docs/TOPOLOGY.md); keeps the CSV.
      build/bench/topology --csv-out=topology.csv
    else
      "build/bench/$b"
    fi
    echo
  done
  # Fleet consolidation (docs/CONSOLIDATION.md) is a separate mode of the
  # consolidation bench: a latency service plus churning batch tenants
  # under quota arbitration. Writes fleet.csv plus its own telemetry pair.
  echo "==================== consolidation --fleet ===================="
  build/bench/consolidation --fleet --qos=latency \
    "--metrics-out=$TELEMETRY_DIR/fleet.prom" \
    "--trace-out=$TELEMETRY_DIR/fleet.trace.json"
  echo
} 2>&1 | tee bench_output.txt

# micro_hotpath's default run includes the ring_transport sweep (streaming
# vs swap-and-clear barrier merge, docs/STREAMING.md) and refreshes the
# tracked BENCH_hotpath.json; a JSON without that section means the sweep
# was skipped or the bench predates it — fail loudly either way.
if [ ! -s BENCH_hotpath.json ]; then
  echo "ERROR: micro_hotpath did not write BENCH_hotpath.json" >&2
  exit 1
fi
if ! grep -q '"ring_transport"' BENCH_hotpath.json; then
  echo "ERROR: BENCH_hotpath.json has no ring_transport section" >&2
  exit 1
fi

echo "Done. See test_output.txt, bench_output.txt, fig*_*.csv, fleet.csv," \
     "topology.csv, BENCH_hotpath.json and $TELEMETRY_DIR/*.prom /" \
     "*.trace.json."
