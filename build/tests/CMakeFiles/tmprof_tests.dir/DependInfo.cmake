
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abit.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_abit.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_abit.cpp.o.d"
  "/root/repo/tests/test_autonuma.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_autonuma.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_autonuma.cpp.o.d"
  "/root/repo/tests/test_badgertrap.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_badgertrap.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_badgertrap.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cdf.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_cdf.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_cdf.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_csv_log.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_csv_log.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_csv_log.cpp.o.d"
  "/root/repo/tests/test_daemon.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_daemon.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_daemon.cpp.o.d"
  "/root/repo/tests/test_driver.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_driver.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_driver.cpp.o.d"
  "/root/repo/tests/test_epoch.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_epoch.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_epoch.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gating.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_gating.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_gating.cpp.o.d"
  "/root/repo/tests/test_golden_figures.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_golden_figures.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_golden_figures.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_hitrate.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_hitrate.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_hitrate.cpp.o.d"
  "/root/repo/tests/test_ibs.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_ibs.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_ibs.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_integration2.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_integration2.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_integration2.cpp.o.d"
  "/root/repo/tests/test_khugepaged_swap.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_khugepaged_swap.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_khugepaged_swap.cpp.o.d"
  "/root/repo/tests/test_lwp.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_lwp.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_lwp.cpp.o.d"
  "/root/repo/tests/test_mover.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_mover.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_mover.cpp.o.d"
  "/root/repo/tests/test_numa_maps.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_numa_maps.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_numa_maps.cpp.o.d"
  "/root/repo/tests/test_page_stats.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_page_stats.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_page_stats.cpp.o.d"
  "/root/repo/tests/test_page_table.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_page_table.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_page_table.cpp.o.d"
  "/root/repo/tests/test_parallel_determinism.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_parallel_determinism.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_parallel_determinism.cpp.o.d"
  "/root/repo/tests/test_pebs.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_pebs.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_pebs.cpp.o.d"
  "/root/repo/tests/test_pid_filter.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_pid_filter.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_pid_filter.cpp.o.d"
  "/root/repo/tests/test_pml.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_pml.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_pml.cpp.o.d"
  "/root/repo/tests/test_pmu.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_pmu.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_pmu.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_ptw.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_ptw.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_ptw.cpp.o.d"
  "/root/repo/tests/test_ranking.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_ranking.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_ranking.cpp.o.d"
  "/root/repo/tests/test_resctrl.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_resctrl.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_resctrl.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_series_io.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_series_io.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_series_io.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_thermostat.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_thermostat.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_thermostat.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_tiers.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_tiers.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_tiers.cpp.o.d"
  "/root/repo/tests/test_tlb.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_tlb.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_workload_stats.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_workload_stats.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_workload_stats.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_workloads.cpp.o.d"
  "/root/repo/tests/test_write_policy.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_write_policy.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_write_policy.cpp.o.d"
  "/root/repo/tests/test_zipf.cpp" "tests/CMakeFiles/tmprof_tests.dir/test_zipf.cpp.o" "gcc" "tests/CMakeFiles/tmprof_tests.dir/test_zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tiering/CMakeFiles/tmprof_tiering.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tmprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/tmprof_monitors.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/tmprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmprof_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
