# Empty dependencies file for tmprof_tests.
# This may be replaced when dependencies are built.
