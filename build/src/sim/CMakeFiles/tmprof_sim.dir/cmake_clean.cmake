file(REMOVE_RECURSE
  "CMakeFiles/tmprof_sim.dir/process.cpp.o"
  "CMakeFiles/tmprof_sim.dir/process.cpp.o.d"
  "CMakeFiles/tmprof_sim.dir/resctrl.cpp.o"
  "CMakeFiles/tmprof_sim.dir/resctrl.cpp.o.d"
  "CMakeFiles/tmprof_sim.dir/system.cpp.o"
  "CMakeFiles/tmprof_sim.dir/system.cpp.o.d"
  "CMakeFiles/tmprof_sim.dir/trace_io.cpp.o"
  "CMakeFiles/tmprof_sim.dir/trace_io.cpp.o.d"
  "libtmprof_sim.a"
  "libtmprof_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
