file(REMOVE_RECURSE
  "libtmprof_sim.a"
)
