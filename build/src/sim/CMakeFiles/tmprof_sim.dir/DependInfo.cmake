
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/process.cpp" "src/sim/CMakeFiles/tmprof_sim.dir/process.cpp.o" "gcc" "src/sim/CMakeFiles/tmprof_sim.dir/process.cpp.o.d"
  "/root/repo/src/sim/resctrl.cpp" "src/sim/CMakeFiles/tmprof_sim.dir/resctrl.cpp.o" "gcc" "src/sim/CMakeFiles/tmprof_sim.dir/resctrl.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/tmprof_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/tmprof_sim.dir/system.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/sim/CMakeFiles/tmprof_sim.dir/trace_io.cpp.o" "gcc" "src/sim/CMakeFiles/tmprof_sim.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/tmprof_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/tmprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/tmprof_monitors.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
