# Empty compiler generated dependencies file for tmprof_sim.
# This may be replaced when dependencies are built.
