# Empty compiler generated dependencies file for tmprof_util.
# This may be replaced when dependencies are built.
