file(REMOVE_RECURSE
  "libtmprof_util.a"
)
