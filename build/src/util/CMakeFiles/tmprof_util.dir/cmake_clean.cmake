file(REMOVE_RECURSE
  "CMakeFiles/tmprof_util.dir/cdf.cpp.o"
  "CMakeFiles/tmprof_util.dir/cdf.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/cli.cpp.o"
  "CMakeFiles/tmprof_util.dir/cli.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/csv.cpp.o"
  "CMakeFiles/tmprof_util.dir/csv.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/histogram.cpp.o"
  "CMakeFiles/tmprof_util.dir/histogram.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/log.cpp.o"
  "CMakeFiles/tmprof_util.dir/log.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/stats.cpp.o"
  "CMakeFiles/tmprof_util.dir/stats.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/table.cpp.o"
  "CMakeFiles/tmprof_util.dir/table.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/thread_pool.cpp.o"
  "CMakeFiles/tmprof_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/tmprof_util.dir/zipf.cpp.o"
  "CMakeFiles/tmprof_util.dir/zipf.cpp.o.d"
  "libtmprof_util.a"
  "libtmprof_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
