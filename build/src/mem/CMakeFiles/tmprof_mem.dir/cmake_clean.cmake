file(REMOVE_RECURSE
  "CMakeFiles/tmprof_mem.dir/cache.cpp.o"
  "CMakeFiles/tmprof_mem.dir/cache.cpp.o.d"
  "CMakeFiles/tmprof_mem.dir/page_table.cpp.o"
  "CMakeFiles/tmprof_mem.dir/page_table.cpp.o.d"
  "CMakeFiles/tmprof_mem.dir/ptw.cpp.o"
  "CMakeFiles/tmprof_mem.dir/ptw.cpp.o.d"
  "CMakeFiles/tmprof_mem.dir/tiers.cpp.o"
  "CMakeFiles/tmprof_mem.dir/tiers.cpp.o.d"
  "CMakeFiles/tmprof_mem.dir/tlb.cpp.o"
  "CMakeFiles/tmprof_mem.dir/tlb.cpp.o.d"
  "libtmprof_mem.a"
  "libtmprof_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
