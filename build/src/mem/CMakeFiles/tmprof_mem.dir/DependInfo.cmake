
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/tmprof_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/tmprof_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/page_table.cpp" "src/mem/CMakeFiles/tmprof_mem.dir/page_table.cpp.o" "gcc" "src/mem/CMakeFiles/tmprof_mem.dir/page_table.cpp.o.d"
  "/root/repo/src/mem/ptw.cpp" "src/mem/CMakeFiles/tmprof_mem.dir/ptw.cpp.o" "gcc" "src/mem/CMakeFiles/tmprof_mem.dir/ptw.cpp.o.d"
  "/root/repo/src/mem/tiers.cpp" "src/mem/CMakeFiles/tmprof_mem.dir/tiers.cpp.o" "gcc" "src/mem/CMakeFiles/tmprof_mem.dir/tiers.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/mem/CMakeFiles/tmprof_mem.dir/tlb.cpp.o" "gcc" "src/mem/CMakeFiles/tmprof_mem.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
