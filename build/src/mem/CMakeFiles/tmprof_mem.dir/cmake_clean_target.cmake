file(REMOVE_RECURSE
  "libtmprof_mem.a"
)
