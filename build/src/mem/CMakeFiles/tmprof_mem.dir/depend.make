# Empty dependencies file for tmprof_mem.
# This may be replaced when dependencies are built.
