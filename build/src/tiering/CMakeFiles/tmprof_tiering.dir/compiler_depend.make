# Empty compiler generated dependencies file for tmprof_tiering.
# This may be replaced when dependencies are built.
