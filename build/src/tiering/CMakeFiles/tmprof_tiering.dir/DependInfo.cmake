
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tiering/epoch.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/epoch.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/epoch.cpp.o.d"
  "/root/repo/src/tiering/hitrate.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/hitrate.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/hitrate.cpp.o.d"
  "/root/repo/src/tiering/khugepaged.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/khugepaged.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/khugepaged.cpp.o.d"
  "/root/repo/src/tiering/mover.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/mover.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/mover.cpp.o.d"
  "/root/repo/src/tiering/policies.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/policies.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/policies.cpp.o.d"
  "/root/repo/src/tiering/runner.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/runner.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/runner.cpp.o.d"
  "/root/repo/src/tiering/series_io.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/series_io.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/series_io.cpp.o.d"
  "/root/repo/src/tiering/swap.cpp" "src/tiering/CMakeFiles/tmprof_tiering.dir/swap.cpp.o" "gcc" "src/tiering/CMakeFiles/tmprof_tiering.dir/swap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/tmprof_monitors.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmprof_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/tmprof_pmu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
