file(REMOVE_RECURSE
  "libtmprof_tiering.a"
)
