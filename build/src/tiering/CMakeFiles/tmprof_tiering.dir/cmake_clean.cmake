file(REMOVE_RECURSE
  "CMakeFiles/tmprof_tiering.dir/epoch.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/epoch.cpp.o.d"
  "CMakeFiles/tmprof_tiering.dir/hitrate.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/hitrate.cpp.o.d"
  "CMakeFiles/tmprof_tiering.dir/khugepaged.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/khugepaged.cpp.o.d"
  "CMakeFiles/tmprof_tiering.dir/mover.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/mover.cpp.o.d"
  "CMakeFiles/tmprof_tiering.dir/policies.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/policies.cpp.o.d"
  "CMakeFiles/tmprof_tiering.dir/runner.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/runner.cpp.o.d"
  "CMakeFiles/tmprof_tiering.dir/series_io.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/series_io.cpp.o.d"
  "CMakeFiles/tmprof_tiering.dir/swap.cpp.o"
  "CMakeFiles/tmprof_tiering.dir/swap.cpp.o.d"
  "libtmprof_tiering.a"
  "libtmprof_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
