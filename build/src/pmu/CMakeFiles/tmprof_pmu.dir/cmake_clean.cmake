file(REMOVE_RECURSE
  "CMakeFiles/tmprof_pmu.dir/counters.cpp.o"
  "CMakeFiles/tmprof_pmu.dir/counters.cpp.o.d"
  "libtmprof_pmu.a"
  "libtmprof_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
