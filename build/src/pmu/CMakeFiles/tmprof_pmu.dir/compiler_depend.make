# Empty compiler generated dependencies file for tmprof_pmu.
# This may be replaced when dependencies are built.
