file(REMOVE_RECURSE
  "libtmprof_pmu.a"
)
