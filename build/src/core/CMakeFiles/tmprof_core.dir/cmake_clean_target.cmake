file(REMOVE_RECURSE
  "libtmprof_core.a"
)
