# Empty compiler generated dependencies file for tmprof_core.
# This may be replaced when dependencies are built.
