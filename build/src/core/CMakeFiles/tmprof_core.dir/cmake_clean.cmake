file(REMOVE_RECURSE
  "CMakeFiles/tmprof_core.dir/autonuma.cpp.o"
  "CMakeFiles/tmprof_core.dir/autonuma.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/daemon.cpp.o"
  "CMakeFiles/tmprof_core.dir/daemon.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/driver.cpp.o"
  "CMakeFiles/tmprof_core.dir/driver.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/gating.cpp.o"
  "CMakeFiles/tmprof_core.dir/gating.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/numa_maps.cpp.o"
  "CMakeFiles/tmprof_core.dir/numa_maps.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/page_stats.cpp.o"
  "CMakeFiles/tmprof_core.dir/page_stats.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/pid_filter.cpp.o"
  "CMakeFiles/tmprof_core.dir/pid_filter.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/ranking.cpp.o"
  "CMakeFiles/tmprof_core.dir/ranking.cpp.o.d"
  "CMakeFiles/tmprof_core.dir/thermostat.cpp.o"
  "CMakeFiles/tmprof_core.dir/thermostat.cpp.o.d"
  "libtmprof_core.a"
  "libtmprof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
