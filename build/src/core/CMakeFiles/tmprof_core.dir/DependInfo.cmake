
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autonuma.cpp" "src/core/CMakeFiles/tmprof_core.dir/autonuma.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/autonuma.cpp.o.d"
  "/root/repo/src/core/daemon.cpp" "src/core/CMakeFiles/tmprof_core.dir/daemon.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/daemon.cpp.o.d"
  "/root/repo/src/core/driver.cpp" "src/core/CMakeFiles/tmprof_core.dir/driver.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/driver.cpp.o.d"
  "/root/repo/src/core/gating.cpp" "src/core/CMakeFiles/tmprof_core.dir/gating.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/gating.cpp.o.d"
  "/root/repo/src/core/numa_maps.cpp" "src/core/CMakeFiles/tmprof_core.dir/numa_maps.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/numa_maps.cpp.o.d"
  "/root/repo/src/core/page_stats.cpp" "src/core/CMakeFiles/tmprof_core.dir/page_stats.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/page_stats.cpp.o.d"
  "/root/repo/src/core/pid_filter.cpp" "src/core/CMakeFiles/tmprof_core.dir/pid_filter.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/pid_filter.cpp.o.d"
  "/root/repo/src/core/ranking.cpp" "src/core/CMakeFiles/tmprof_core.dir/ranking.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/ranking.cpp.o.d"
  "/root/repo/src/core/thermostat.cpp" "src/core/CMakeFiles/tmprof_core.dir/thermostat.cpp.o" "gcc" "src/core/CMakeFiles/tmprof_core.dir/thermostat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tmprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/tmprof_monitors.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/tmprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmprof_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmprof_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
