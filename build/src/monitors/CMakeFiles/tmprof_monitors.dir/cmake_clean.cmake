file(REMOVE_RECURSE
  "CMakeFiles/tmprof_monitors.dir/abit.cpp.o"
  "CMakeFiles/tmprof_monitors.dir/abit.cpp.o.d"
  "CMakeFiles/tmprof_monitors.dir/badgertrap.cpp.o"
  "CMakeFiles/tmprof_monitors.dir/badgertrap.cpp.o.d"
  "CMakeFiles/tmprof_monitors.dir/ibs.cpp.o"
  "CMakeFiles/tmprof_monitors.dir/ibs.cpp.o.d"
  "CMakeFiles/tmprof_monitors.dir/lwp.cpp.o"
  "CMakeFiles/tmprof_monitors.dir/lwp.cpp.o.d"
  "CMakeFiles/tmprof_monitors.dir/pebs.cpp.o"
  "CMakeFiles/tmprof_monitors.dir/pebs.cpp.o.d"
  "CMakeFiles/tmprof_monitors.dir/pml.cpp.o"
  "CMakeFiles/tmprof_monitors.dir/pml.cpp.o.d"
  "libtmprof_monitors.a"
  "libtmprof_monitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_monitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
