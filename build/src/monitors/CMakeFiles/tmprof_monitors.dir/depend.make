# Empty dependencies file for tmprof_monitors.
# This may be replaced when dependencies are built.
