
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitors/abit.cpp" "src/monitors/CMakeFiles/tmprof_monitors.dir/abit.cpp.o" "gcc" "src/monitors/CMakeFiles/tmprof_monitors.dir/abit.cpp.o.d"
  "/root/repo/src/monitors/badgertrap.cpp" "src/monitors/CMakeFiles/tmprof_monitors.dir/badgertrap.cpp.o" "gcc" "src/monitors/CMakeFiles/tmprof_monitors.dir/badgertrap.cpp.o.d"
  "/root/repo/src/monitors/ibs.cpp" "src/monitors/CMakeFiles/tmprof_monitors.dir/ibs.cpp.o" "gcc" "src/monitors/CMakeFiles/tmprof_monitors.dir/ibs.cpp.o.d"
  "/root/repo/src/monitors/lwp.cpp" "src/monitors/CMakeFiles/tmprof_monitors.dir/lwp.cpp.o" "gcc" "src/monitors/CMakeFiles/tmprof_monitors.dir/lwp.cpp.o.d"
  "/root/repo/src/monitors/pebs.cpp" "src/monitors/CMakeFiles/tmprof_monitors.dir/pebs.cpp.o" "gcc" "src/monitors/CMakeFiles/tmprof_monitors.dir/pebs.cpp.o.d"
  "/root/repo/src/monitors/pml.cpp" "src/monitors/CMakeFiles/tmprof_monitors.dir/pml.cpp.o" "gcc" "src/monitors/CMakeFiles/tmprof_monitors.dir/pml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/tmprof_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/tmprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
