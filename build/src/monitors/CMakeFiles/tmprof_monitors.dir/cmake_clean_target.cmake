file(REMOVE_RECURSE
  "libtmprof_monitors.a"
)
