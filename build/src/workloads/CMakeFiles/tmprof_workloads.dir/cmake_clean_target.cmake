file(REMOVE_RECURSE
  "libtmprof_workloads.a"
)
