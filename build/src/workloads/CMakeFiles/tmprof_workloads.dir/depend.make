# Empty dependencies file for tmprof_workloads.
# This may be replaced when dependencies are built.
