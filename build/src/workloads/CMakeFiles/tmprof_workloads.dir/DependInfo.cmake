
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/data_analytics.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/data_analytics.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/data_analytics.cpp.o.d"
  "/root/repo/src/workloads/data_caching.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/data_caching.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/data_caching.cpp.o.d"
  "/root/repo/src/workloads/graph500.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/graph500.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/graph500.cpp.o.d"
  "/root/repo/src/workloads/graph_analytics.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/graph_analytics.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/graph_analytics.cpp.o.d"
  "/root/repo/src/workloads/gups.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/gups.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/gups.cpp.o.d"
  "/root/repo/src/workloads/lulesh.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/lulesh.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/lulesh.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/web_serving.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/web_serving.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/web_serving.cpp.o.d"
  "/root/repo/src/workloads/xsbench.cpp" "src/workloads/CMakeFiles/tmprof_workloads.dir/xsbench.cpp.o" "gcc" "src/workloads/CMakeFiles/tmprof_workloads.dir/xsbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/tmprof_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
