file(REMOVE_RECURSE
  "CMakeFiles/tmprof_workloads.dir/data_analytics.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/data_analytics.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/data_caching.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/data_caching.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/graph500.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/graph500.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/graph_analytics.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/graph_analytics.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/gups.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/gups.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/lulesh.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/lulesh.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/registry.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/web_serving.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/web_serving.cpp.o.d"
  "CMakeFiles/tmprof_workloads.dir/xsbench.cpp.o"
  "CMakeFiles/tmprof_workloads.dir/xsbench.cpp.o.d"
  "libtmprof_workloads.a"
  "libtmprof_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmprof_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
