file(REMOVE_RECURSE
  "CMakeFiles/table4_detected_pages.dir/table4_detected_pages.cpp.o"
  "CMakeFiles/table4_detected_pages.dir/table4_detected_pages.cpp.o.d"
  "table4_detected_pages"
  "table4_detected_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_detected_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
