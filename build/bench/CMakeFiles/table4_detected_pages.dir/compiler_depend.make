# Empty compiler generated dependencies file for table4_detected_pages.
# This may be replaced when dependencies are built.
