# Empty dependencies file for consolidation.
# This may be replaced when dependencies are built.
