file(REMOVE_RECURSE
  "CMakeFiles/consolidation.dir/consolidation.cpp.o"
  "CMakeFiles/consolidation.dir/consolidation.cpp.o.d"
  "consolidation"
  "consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
