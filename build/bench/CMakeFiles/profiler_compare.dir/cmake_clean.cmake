file(REMOVE_RECURSE
  "CMakeFiles/profiler_compare.dir/profiler_compare.cpp.o"
  "CMakeFiles/profiler_compare.dir/profiler_compare.cpp.o.d"
  "profiler_compare"
  "profiler_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
