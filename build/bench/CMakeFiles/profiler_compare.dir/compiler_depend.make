# Empty compiler generated dependencies file for profiler_compare.
# This may be replaced when dependencies are built.
