# Empty dependencies file for profiler_compare.
# This may be replaced when dependencies are built.
