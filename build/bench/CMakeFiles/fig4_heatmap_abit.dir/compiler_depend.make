# Empty compiler generated dependencies file for fig4_heatmap_abit.
# This may be replaced when dependencies are built.
