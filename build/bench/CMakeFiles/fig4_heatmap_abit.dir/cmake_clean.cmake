file(REMOVE_RECURSE
  "CMakeFiles/fig4_heatmap_abit.dir/fig4_heatmap_abit.cpp.o"
  "CMakeFiles/fig4_heatmap_abit.dir/fig4_heatmap_abit.cpp.o.d"
  "fig4_heatmap_abit"
  "fig4_heatmap_abit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_heatmap_abit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
