file(REMOVE_RECURSE
  "CMakeFiles/ablation_epoch.dir/ablation_epoch.cpp.o"
  "CMakeFiles/ablation_epoch.dir/ablation_epoch.cpp.o.d"
  "ablation_epoch"
  "ablation_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
