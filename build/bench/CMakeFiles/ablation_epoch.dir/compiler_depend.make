# Empty compiler generated dependencies file for ablation_epoch.
# This may be replaced when dependencies are built.
