file(REMOVE_RECURSE
  "CMakeFiles/three_tier.dir/three_tier.cpp.o"
  "CMakeFiles/three_tier.dir/three_tier.cpp.o.d"
  "three_tier"
  "three_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
