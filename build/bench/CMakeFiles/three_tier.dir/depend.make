# Empty dependencies file for three_tier.
# This may be replaced when dependencies are built.
