# Empty dependencies file for fig6_hitrate.
# This may be replaced when dependencies are built.
