
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_hitrate.cpp" "bench/CMakeFiles/fig6_hitrate.dir/fig6_hitrate.cpp.o" "gcc" "bench/CMakeFiles/fig6_hitrate.dir/fig6_hitrate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tiering/CMakeFiles/tmprof_tiering.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tmprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tmprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/tmprof_monitors.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/tmprof_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmprof_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tmprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
