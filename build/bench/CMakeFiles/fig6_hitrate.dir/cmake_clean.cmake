file(REMOVE_RECURSE
  "CMakeFiles/fig6_hitrate.dir/fig6_hitrate.cpp.o"
  "CMakeFiles/fig6_hitrate.dir/fig6_hitrate.cpp.o.d"
  "fig6_hitrate"
  "fig6_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
