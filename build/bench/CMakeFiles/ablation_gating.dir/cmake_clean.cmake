file(REMOVE_RECURSE
  "CMakeFiles/ablation_gating.dir/ablation_gating.cpp.o"
  "CMakeFiles/ablation_gating.dir/ablation_gating.cpp.o.d"
  "ablation_gating"
  "ablation_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
