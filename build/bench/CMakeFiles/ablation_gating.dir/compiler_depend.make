# Empty compiler generated dependencies file for ablation_gating.
# This may be replaced when dependencies are built.
