file(REMOVE_RECURSE
  "CMakeFiles/ablation_shootdown.dir/ablation_shootdown.cpp.o"
  "CMakeFiles/ablation_shootdown.dir/ablation_shootdown.cpp.o.d"
  "ablation_shootdown"
  "ablation_shootdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shootdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
