# Empty compiler generated dependencies file for ablation_shootdown.
# This may be replaced when dependencies are built.
