# Empty compiler generated dependencies file for fig2_ptw_ratio.
# This may be replaced when dependencies are built.
