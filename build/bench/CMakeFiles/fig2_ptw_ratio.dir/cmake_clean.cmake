file(REMOVE_RECURSE
  "CMakeFiles/fig2_ptw_ratio.dir/fig2_ptw_ratio.cpp.o"
  "CMakeFiles/fig2_ptw_ratio.dir/fig2_ptw_ratio.cpp.o.d"
  "fig2_ptw_ratio"
  "fig2_ptw_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ptw_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
