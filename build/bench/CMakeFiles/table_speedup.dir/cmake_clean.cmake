file(REMOVE_RECURSE
  "CMakeFiles/table_speedup.dir/table_speedup.cpp.o"
  "CMakeFiles/table_speedup.dir/table_speedup.cpp.o.d"
  "table_speedup"
  "table_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
