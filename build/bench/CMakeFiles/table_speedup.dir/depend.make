# Empty dependencies file for table_speedup.
# This may be replaced when dependencies are built.
