# Empty dependencies file for fig3_heatmap_ibs.
# This may be replaced when dependencies are built.
