file(REMOVE_RECURSE
  "CMakeFiles/fig3_heatmap_ibs.dir/fig3_heatmap_ibs.cpp.o"
  "CMakeFiles/fig3_heatmap_ibs.dir/fig3_heatmap_ibs.cpp.o.d"
  "fig3_heatmap_ibs"
  "fig3_heatmap_ibs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_heatmap_ibs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
