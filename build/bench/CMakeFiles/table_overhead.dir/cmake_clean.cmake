file(REMOVE_RECURSE
  "CMakeFiles/table_overhead.dir/table_overhead.cpp.o"
  "CMakeFiles/table_overhead.dir/table_overhead.cpp.o.d"
  "table_overhead"
  "table_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
