# Empty compiler generated dependencies file for table_overhead.
# This may be replaced when dependencies are built.
