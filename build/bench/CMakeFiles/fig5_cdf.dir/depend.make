# Empty dependencies file for fig5_cdf.
# This may be replaced when dependencies are built.
