file(REMOVE_RECURSE
  "CMakeFiles/fig5_cdf.dir/fig5_cdf.cpp.o"
  "CMakeFiles/fig5_cdf.dir/fig5_cdf.cpp.o.d"
  "fig5_cdf"
  "fig5_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
