file(REMOVE_RECURSE
  "CMakeFiles/ablation_fusion.dir/ablation_fusion.cpp.o"
  "CMakeFiles/ablation_fusion.dir/ablation_fusion.cpp.o.d"
  "ablation_fusion"
  "ablation_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
