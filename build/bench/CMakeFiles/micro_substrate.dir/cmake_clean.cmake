file(REMOVE_RECURSE
  "CMakeFiles/micro_substrate.dir/micro_substrate.cpp.o"
  "CMakeFiles/micro_substrate.dir/micro_substrate.cpp.o.d"
  "micro_substrate"
  "micro_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
