file(REMOVE_RECURSE
  "CMakeFiles/arch_compare.dir/arch_compare.cpp.o"
  "CMakeFiles/arch_compare.dir/arch_compare.cpp.o.d"
  "arch_compare"
  "arch_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
