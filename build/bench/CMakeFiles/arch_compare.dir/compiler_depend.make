# Empty compiler generated dependencies file for arch_compare.
# This may be replaced when dependencies are built.
