file(REMOVE_RECURSE
  "CMakeFiles/hpc_placement.dir/hpc_placement.cpp.o"
  "CMakeFiles/hpc_placement.dir/hpc_placement.cpp.o.d"
  "hpc_placement"
  "hpc_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
