# Empty dependencies file for hpc_placement.
# This may be replaced when dependencies are built.
