file(REMOVE_RECURSE
  "CMakeFiles/caching_tiering.dir/caching_tiering.cpp.o"
  "CMakeFiles/caching_tiering.dir/caching_tiering.cpp.o.d"
  "caching_tiering"
  "caching_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caching_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
