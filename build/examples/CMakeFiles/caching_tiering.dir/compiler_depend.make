# Empty compiler generated dependencies file for caching_tiering.
# This may be replaced when dependencies are built.
