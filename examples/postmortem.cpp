/// Postmortem analysis: record a binary access trace once, then analyze it
/// offline — replay it through IBS models at several sampling rates
/// without re-running the machine, and dump the numa_maps view of what the
/// profiler accumulated.
///
/// This is the "postmortem" workflow the paper's footnote 2 contrasts with
/// online profiling: full traces are too slow to collect in production,
/// but once you have one (from the simulator, here), every profiling
/// question becomes a cheap replay.
///
/// Build & run:  ./build/examples/postmortem

#include <cstdio>
#include <iostream>
#include <unordered_set>

#include "core/driver.hpp"
#include "core/numa_maps.hpp"
#include "monitors/ibs.hpp"
#include "sim/system.hpp"
#include "sim/trace_io.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main() {
  using namespace tmprof;
  const char* trace_path = "/tmp/tmprof_postmortem.trace";

  // --- 1. Record: run data_caching once with a trace writer attached. ---
  const auto spec = workloads::find_spec("data_caching", 0.1);
  sim::SimConfig config;
  config.llc_bytes = 1ULL << 20;
  config.tier1_frames = (spec.total_bytes >> mem::kPageShift) * 5 / 4;
  config.tier2_frames = 2048;
  sim::System system(config);
  for (std::uint32_t i = 0; i < spec.processes; ++i) {
    system.add_process(workloads::make_workload(spec, i, 7));
  }
  // Also run the regular TMP driver so numa_maps has statistics to show.
  core::DriverConfig driver_config;
  driver_config.ibs = monitors::IbsConfig::with_period(512);
  core::TmpDriver driver(system, driver_config);
  {
    sim::TraceWriter writer(trace_path);
    system.add_observer(&writer);
    system.step(400'000);
    system.remove_observer(&writer);
    std::cout << "recorded " << writer.records_written()
              << " memory ops to " << trace_path << "\n\n";
  }
  driver.scan_processes({system.processes().front()->pid()});
  driver.end_epoch();

  // --- 2. Replay: what would IBS have seen at other sampling rates? ------
  util::TextTable table({"ibs period (uops)", "samples", "distinct pages"});
  for (const std::uint64_t period : {2048ULL, 512ULL, 128ULL, 32ULL}) {
    monitors::IbsMonitor ibs(monitors::IbsConfig::with_period(period),
                             config.cores);
    std::unordered_set<mem::Pfn> pages;
    ibs.set_drain([&](std::span<const monitors::TraceSample> samples) {
      for (const auto& s : samples) {
        if (!s.is_store && mem::is_memory(s.source)) {
          pages.insert(mem::pfn_of(s.paddr));
        }
      }
    });
    sim::TraceReplayer replayer(trace_path);
    replayer.add_observer(&ibs);
    replayer.replay(0, config.uops_per_op);
    ibs.drain();
    table.add_row({util::TextTable::num(period),
                   util::TextTable::num(ibs.samples_taken()),
                   util::TextTable::num(pages.size())});
  }
  std::cout << "IBS sampling sweep over the recorded trace:\n";
  table.print(std::cout);

  // --- 3. The numa_maps view of the live run's profile. -----------------
  const mem::Pid first = system.processes().front()->pid();
  std::cout << "\nnuma_maps for pid " << first << " (first 6 lines):\n";
  const std::string maps = core::numa_maps(system, first, driver.store());
  std::size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    const std::size_t next = maps.find('\n', pos);
    std::cout << maps.substr(pos, next - pos) << '\n';
    pos = next == std::string::npos ? next : next + 1;
  }
  std::remove(trace_path);
  return 0;
}
