/// A web service under TMP-driven tiering: the paper's CloudSuite
/// Web-Serving workload runs with a fast tier far smaller than its
/// content. Two identical machines run side by side — one first-touch,
/// one with the TMP daemon + page mover — and the per-epoch fast-tier
/// hitrates are compared.
///
/// User sessions drift (yesterday's hot profiles cool down), so
/// first-touch placement decays while TMP keeps re-capturing the moving
/// hot set: the gap between the two columns is the profiler's value.
///
/// Build & run:  ./build/examples/caching_tiering

#include <iostream>

#include "core/daemon.hpp"
#include "pmu/events.hpp"
#include "sim/system.hpp"
#include "tiering/mover.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace tmprof;

/// One machine + service + (optional) profiler/mover.
struct Deployment {
  sim::System system;
  std::unique_ptr<core::TmpDaemon> daemon;
  std::unique_ptr<tiering::PageMover> mover;
  std::uint64_t last_t1 = 0;
  std::uint64_t last_total = 0;

  explicit Deployment(const workloads::WorkloadSpec& spec,
                      const sim::SimConfig& config, bool with_tmp)
      : system(config) {
    for (std::uint32_t i = 0; i < spec.processes; ++i) {
      system.add_process(workloads::make_workload(spec, i, /*seed=*/7));
    }
    if (with_tmp) {
      core::DaemonConfig daemon_config;
      daemon_config.driver.ibs = monitors::IbsConfig::with_period(256);
      daemon.reset(new core::TmpDaemon(system, daemon_config));
      tiering::MoverConfig mover_config;
      mover_config.per_page_cost_ns = 2500;
      mover.reset(new tiering::PageMover(system, mover_config));
    }
  }

  /// Run one epoch; returns this epoch's fast-tier hitrate and migrations.
  std::pair<double, std::uint64_t> epoch(std::uint64_t ops,
                                         std::uint64_t capacity_frames) {
    system.step(ops);
    std::uint64_t moves = 0;
    if (daemon) {
      const core::ProfileSnapshot snap = daemon->tick();
      const tiering::MoveStats stats =
          mover->apply(snap.ranking, capacity_frames);
      moves = stats.promoted + stats.demoted;
    }
    const std::uint64_t t1 =
        system.pmu().truth_total(pmu::Event::MemReadTier1);
    const std::uint64_t t2 =
        system.pmu().truth_total(pmu::Event::MemReadTier2);
    const std::uint64_t total = t1 + t2;
    const double hitrate =
        total == last_total
            ? 1.0
            : static_cast<double>(t1 - last_t1) /
                  static_cast<double>(total - last_total);
    last_t1 = t1;
    last_total = total;
    return {hitrate, moves};
  }
};

}  // namespace

int main() {
  const auto spec = workloads::find_spec("web_serving", 0.5);
  sim::SimConfig config;
  config.llc_bytes = 1ULL << 20;
  // Fast tier: 1/8 of the content. Slow tier: everything else.
  config.tier1_frames = (spec.total_bytes >> mem::kPageShift) / 8;
  config.tier2_frames = (spec.total_bytes >> mem::kPageShift) * 5 / 4;
  std::cout << "web_serving: " << spec.processes << " servers, "
            << (spec.total_bytes >> 20) << " MiB content, "
            << (config.tier1_frames >> 8) << " MiB fast tier, churning "
            << "key popularity\n\n";

  Deployment baseline(spec, config, /*with_tmp=*/false);
  Deployment tmp(spec, config, /*with_tmp=*/true);

  util::TextTable table({"epoch", "hitrate (first-touch)", "hitrate (tmp)",
                         "advantage", "migrations"});
  for (int epoch = 0; epoch < 10; ++epoch) {
    const auto [base_hit, base_moves] =
        baseline.epoch(800'000, config.tier1_frames);
    (void)base_moves;
    const auto [tmp_hit, tmp_moves] =
        tmp.epoch(800'000, config.tier1_frames);
    table.add_row({util::TextTable::num(static_cast<std::uint64_t>(epoch)),
                   util::TextTable::percent(base_hit),
                   util::TextTable::percent(tmp_hit),
                   util::TextTable::fixed(100.0 * (tmp_hit - base_hit), 1) +
                       "pp",
                   util::TextTable::num(tmp_moves)});
  }
  table.print(std::cout);
  std::cout << "\nBoth columns drift down as the cold tail grows, but TMP "
               "keeps re-capturing the moving hot set; the advantage column "
               "is the profiler's contribution.\n";
  return 0;
}
