/// Custom policy: the library's policy interface is the paper's stable
/// profiler-policy boundary — "system software developers are free to
/// handcraft their own hybrid memory-architecture policies" (Section I).
///
/// This example implements a *write-aware* policy (CLOCK-DWF-flavored):
/// pages with store traffic are preferred for the fast tier, because slow
/// NVM media pays a much larger write than read penalty. It plugs into the
/// same evaluation pipeline as the built-in policies.
///
/// Build & run:  ./build/examples/custom_policy

#include <algorithm>
#include <iostream>
#include <vector>

#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace tmprof;

/// Prefers pages whose profile shows write activity; rank = hotness
/// boosted by a write multiplier. Demonstrates that PolicyContext exposes
/// enough profile detail (per-source counts in the ranking entries) for
/// media-aware decisions.
class WriteAwarePolicy final : public tiering::Policy {
 public:
  explicit WriteAwarePolicy(double write_boost) : write_boost_(write_boost) {}

  tiering::PlacementSet choose(const tiering::PolicyContext& ctx) override {
    std::vector<core::PageRank> boosted(*ctx.observed_ranking);
    for (core::PageRank& pr : boosted) {
      // Trace samples carry store/load provenance upstream; here the A-bit
      // count approximates touch recency and the trace count volume. A
      // dirty-heavy page shows high trace counts relative to A-bit ones.
      const double write_signal =
          pr.abit == 0 ? 1.0
                       : static_cast<double>(pr.trace) /
                             static_cast<double>(pr.abit);
      pr.rank = static_cast<std::uint64_t>(
          static_cast<double>(pr.rank) *
          (1.0 + write_boost_ * std::min(write_signal, 4.0)));
    }
    std::sort(boosted.begin(), boosted.end(),
              [](const core::PageRank& a, const core::PageRank& b) {
                if (a.rank != b.rank) return a.rank > b.rank;
                return a.key < b.key;
              });
    std::vector<tiering::PageKey> ordered;
    ordered.reserve(boosted.size());
    for (const core::PageRank& pr : boosted) ordered.push_back(pr.key);
    return take_until_full(ordered, ctx);
  }

  [[nodiscard]] std::string_view name() const override {
    return "write-aware";
  }

 private:
  double write_boost_;
};

}  // namespace

int main() {
  const auto spec = workloads::find_spec("data_analytics", 0.5);
  sim::SimConfig config;
  config.llc_bytes = 1ULL << 20;
  config.tier1_frames = (spec.total_bytes >> mem::kPageShift) * 5 / 4;
  config.tier2_frames = 2048;

  tiering::CollectOptions collect;
  collect.n_epochs = 8;
  collect.ops_per_epoch = 600'000;
  collect.daemon.driver.ibs = monitors::IbsConfig::with_period(1024);
  const tiering::EpochSeries series =
      tiering::collect_series(spec, config, collect);

  util::TextTable table({"policy", "t1=1/8", "t1=1/32"});
  auto eval = [&](tiering::Policy& policy, std::uint64_t divisor) {
    tiering::HitrateOptions options;
    options.capacity_frames = series.footprint_frames / divisor;
    return tiering::evaluate_policy(policy, series, options).overall;
  };
  for (const char* builtin : {"history", "freq-decay", "first-touch"}) {
    auto policy8 = tiering::make_policy(builtin);
    auto policy32 = tiering::make_policy(builtin);
    table.add_row({builtin, util::TextTable::percent(eval(*policy8, 8)),
                   util::TextTable::percent(eval(*policy32, 32))});
  }
  WriteAwarePolicy custom8(0.5), custom32(0.5);
  table.add_row({"write-aware (custom)",
                 util::TextTable::percent(eval(custom8, 8)),
                 util::TextTable::percent(eval(custom32, 32))});
  table.print(std::cout);
  std::cout << "\nThe custom policy uses only the public PolicyContext; no "
               "library changes were needed.\n";
  return 0;
}
