/// HPC placement study: XSBench and GUPS (the paper's hardest workloads —
/// huge footprints, random access) under every placement policy, at a fast
/// tier of 1/8 the footprint. Uses the offline evaluation pipeline: one
/// profiled run per workload, then policy replay — the same methodology as
/// the paper's Fig. 6.
///
/// Build & run:  ./build/examples/hpc_placement

#include <iostream>

#include "tiering/hitrate.hpp"
#include "tiering/policies.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

int main() {
  using namespace tmprof;

  util::TextTable table({"workload", "policy", "profile", "tier1 hitrate",
                         "promotions"});
  for (const char* name : {"xsbench", "gups"}) {
    const auto spec = workloads::find_spec(name, 0.5);
    sim::SimConfig config;
    config.llc_bytes = 1ULL << 20;
    config.tier1_frames = (spec.total_bytes >> mem::kPageShift) * 5 / 4;
    config.tier2_frames = 2048;

    tiering::CollectOptions collect;
    collect.n_epochs = 8;
    collect.ops_per_epoch = 600'000;
    collect.daemon.driver.ibs = monitors::IbsConfig::with_period(1024);
    const tiering::EpochSeries series =
        tiering::collect_series(spec, config, collect);
    const std::uint64_t capacity = series.footprint_frames / 8;

    struct Row {
      const char* policy;
      const char* profile;
      core::FusionMode fusion;
    };
    for (const Row& row : {Row{"oracle", "truth", core::FusionMode::Sum},
                           Row{"history", "tmp", core::FusionMode::Sum},
                           Row{"history", "abit", core::FusionMode::AbitOnly},
                           Row{"history", "ibs", core::FusionMode::TraceOnly},
                           Row{"freq-decay", "tmp", core::FusionMode::Sum},
                           Row{"first-touch", "-", core::FusionMode::Sum}}) {
      tiering::HitrateOptions options;
      options.capacity_frames = capacity;
      options.fusion = row.fusion;
      const auto policy = tiering::make_policy(row.policy);
      const tiering::HitrateResult result =
          tiering::evaluate_policy(*policy, series, options);
      table.add_row({name, row.policy, row.profile,
                     util::TextTable::percent(result.overall),
                     util::TextTable::num(result.promotions)});
    }
  }
  table.print(std::cout);
  std::cout << "\nGUPS is uniform random: no policy can beat the capacity "
               "ratio by much. XSBench keeps its unionized-grid index hot, "
               "which profiling-driven policies capture.\n";
  return 0;
}
