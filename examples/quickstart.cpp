/// Quickstart: profile a GUPS-like process with TMP and print its hottest
/// pages.
///
/// This is the smallest end-to-end use of the library:
///   1. build a simulated machine (System),
///   2. give it a workload (a process),
///   3. attach the TMP daemon,
///   4. run for a few epochs and read the fused hotness ranking.
///
/// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/daemon.hpp"
#include "sim/system.hpp"
#include "workloads/gups.hpp"

int main() {
  using namespace tmprof;

  // 1. A machine: 6 cores, two memory tiers (64 MiB fast + 960 MiB slow).
  sim::SimConfig config;
  config.llc_bytes = 1ULL << 20;  // scaled testbed LLC
  sim::System system(config);

  // 2. A process running a 64 MiB GUPS table (THP-backed huge pages).
  const mem::Pid pid =
      system.add_process(std::make_unique<workloads::GupsWorkload>(
          64ULL << 20, /*seed=*/1));
  std::cout << "profiling pid " << pid << " (gups, 64 MiB)\n";

  // 3. The TMP daemon: IBS trace sampling + A-bit scans + HWPC gating.
  core::DaemonConfig daemon_config;
  daemon_config.driver.ibs = monitors::IbsConfig::with_period(4096);
  core::TmpDaemon daemon(system, daemon_config);

  // 4. Run three epochs and print each epoch's hottest pages.
  for (int epoch = 0; epoch < 3; ++epoch) {
    system.step(1'000'000);
    const core::ProfileSnapshot snapshot = daemon.tick();
    std::cout << "\n--- epoch " << snapshot.epoch << ": "
              << snapshot.ranking.size() << " ranked pages ---\n"
              << core::TmpDaemon::dump(snapshot, /*top_n=*/8);
  }

  std::cout << "\nA-bit scan cost so far: "
            << daemon.driver().abit_overhead_ns() / 1000 << " us, "
            << "trace collection cost: "
            << daemon.driver().trace_overhead_ns() / 1000 << " us\n";
  return 0;
}
